(* A blocking client for the wire protocol — used by the test suite, the
   benchmark harness, and the CLI's [--connect] remote mode. *)

module Value = Cypher_values.Value

type t = { fd : Unix.file_descr; max_frame : int }

type error = { kind : Protocol.error_kind; message : string }

type result_set = { columns : string list; rows : Value.t list list }

let ignore_sigpipe () =
  match Sys.os_type with
  | "Unix" -> (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())
  | _ -> ()

let connect ?(timeout = 0.) ?(max_frame = Protocol.default_max_frame) ~host
    ~port () =
  ignore_sigpipe ();
  match Unix.inet_addr_of_string host with
  | exception Failure _ -> Error ("invalid server address: " ^ host)
  | addr -> (
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s:%d: %s" host port
           (Unix.error_message err))
    | () ->
      if timeout > 0. then begin
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
      end;
      Ok { fd; max_frame })

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* One request/response round trip.  Transport failures (connection
   reset, timeout, malformed response) are [Error] with a synthesised
   protocol-violation kind, so callers see one error type. *)
let roundtrip t request k =
  let transport message =
    Error { kind = Protocol.Protocol_violation; message }
  in
  match
    Protocol.write_frame t.fd (Protocol.encode_request request);
    Protocol.read_frame ~max_frame:t.max_frame t.fd
  with
  | None -> transport "server closed the connection"
  | Some payload -> (
    match Protocol.decode_response payload with
    | Protocol.Error { kind; message } -> Error { kind; message }
    | response -> k response
    | exception Protocol.Protocol_error msg -> transport msg)
  | exception Protocol.Protocol_error msg -> transport msg
  | exception Unix.Unix_error (err, _, _) ->
    transport (Unix.error_message err)

let query ?(params = []) ?(options = []) t text =
  roundtrip t (Protocol.Query { text; params; options }) (function
    | Protocol.Result { columns; rows } -> Ok { columns; rows }
    | Protocol.Stats _ ->
      Error
        {
          kind = Protocol.Protocol_violation;
          message = "unexpected stats response to a query";
        }
    | Protocol.Error _ -> assert false (* handled by [roundtrip] *))

let stats_request t request =
  roundtrip t request (function
    | Protocol.Stats pairs -> Ok pairs
    | _ ->
      Error
        {
          kind = Protocol.Protocol_violation;
          message = "expected a stats response";
        })

let server_stats t = stats_request t Protocol.Server_stats
let store_health t = stats_request t Protocol.Store_health

let metrics t = stats_request t Protocol.Metrics
(* the process-wide registry: engine + storage + server series *)

let error_message { kind; message } =
  match kind with
  | Protocol.Protocol_violation -> "protocol: " ^ message
  | Protocol.Timeout | Protocol.Server_error ->
    Protocol.error_kind_name kind ^ ": " ^ message
  | _ -> message (* engine messages already carry their prefix *)
