(* Server-side request counters and the request-latency histogram.

   Since PR 4 these are named series on the process-wide
   {!Cypher_obs.Registry} rather than a private mutex-guarded record:
   the same numbers show up in the 'S' (server-stats) verb, the 'M'
   (metrics) verb and a local [:metrics] read-out, all from one source.
   Registration is idempotent, so every [create] returns a handle onto
   the same series — two servers in one process share them, which is
   what a process-wide exposition wants. *)

module Registry = Cypher_obs.Registry

type t = {
  connections_accepted : Registry.counter;
  connections_active : Registry.gauge;
  requests : Registry.counter;
  errors : Registry.counter;
  timeouts : Registry.counter;
  bytes_in : Registry.counter;
  bytes_out : Registry.counter;
  latency : Registry.histogram;
}

let create () =
  {
    connections_accepted =
      Registry.counter ~help:"TCP connections accepted"
        "cypher_server_connections_accepted_total";
    connections_active =
      Registry.gauge ~help:"currently open connections"
        "cypher_server_connections_active";
    requests =
      Registry.counter ~help:"requests served"
        "cypher_server_requests_total";
    errors =
      Registry.counter ~help:"requests answered with an error frame"
        "cypher_server_errors_total";
    timeouts =
      Registry.counter ~help:"requests cancelled by the per-query timeout"
        "cypher_server_timeouts_total";
    bytes_in =
      Registry.counter ~help:"request payload bytes received"
        "cypher_server_bytes_in_total";
    bytes_out =
      Registry.counter ~help:"response payload bytes sent"
        "cypher_server_bytes_out_total";
    latency =
      Registry.histogram ~help:"request latency (microsecond buckets)"
        "cypher_server_request_latency";
  }

let connection_opened t =
  Registry.incr t.connections_accepted;
  Registry.gauge_incr t.connections_active

let connection_closed t = Registry.gauge_decr t.connections_active
let active_connections t = Registry.gauge_value t.connections_active

let observe t ~elapsed ~bytes_in ~bytes_out ~outcome =
  Registry.incr t.requests;
  Registry.add t.bytes_in bytes_in;
  Registry.add t.bytes_out bytes_out;
  (match outcome with
  | `Ok -> ()
  | `Error -> Registry.incr t.errors
  | `Timeout ->
    Registry.incr t.errors;
    Registry.incr t.timeouts);
  Registry.observe_s t.latency elapsed

(* A stable snapshot as (name, value) pairs — the [:server-stats]
   protocol verb ships exactly this, Codec-encoded as a map. *)
let snapshot t =
  let open Cypher_values.Value in
  let s = Registry.hist_snapshot t.latency in
  let q p =
    match List.assoc_opt p s.Registry.quantiles with
    | Some { Registry.q_us; _ } -> q_us
    | None -> 0
  in
  let saturated =
    List.exists (fun (_, x) -> x.Registry.saturated) s.Registry.quantiles
  in
  [
    ("connections_accepted", Int (Registry.value t.connections_accepted));
    ("connections_active", Int (Registry.gauge_value t.connections_active));
    ("requests", Int (Registry.value t.requests));
    ("errors", Int (Registry.value t.errors));
    ("timeouts", Int (Registry.value t.timeouts));
    ("bytes_in", Int (Registry.value t.bytes_in));
    ("bytes_out", Int (Registry.value t.bytes_out));
    ("latency_p50_us", Int (q 0.5));
    ("latency_p95_us", Int (q 0.95));
    ("latency_p99_us", Int (q 0.99));
    ("latency_max_us", Int s.Registry.max_us);
    ("latency_saturated", Bool saturated);
  ]
