(* Server-side counters and a request-latency histogram, shared by every
   connection thread and therefore mutex-guarded.

   Latencies land in power-of-two microsecond buckets (1µs, 2µs, … ~67s);
   p50/p95 are read off the cumulative histogram as the upper bound of
   the bucket containing that quantile — coarse, but monotone, cheap to
   record, and honest about its own resolution. *)

let bucket_count = 27 (* 2^26 µs ≈ 67 s; the last bucket is open-ended *)

type t = {
  lock : Mutex.t;
  mutable connections_accepted : int;
  mutable connections_active : int;
  mutable requests : int;
  mutable errors : int;
  mutable timeouts : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  latency : int array; (* count per bucket *)
}

let create () =
  {
    lock = Mutex.create ();
    connections_accepted = 0;
    connections_active = 0;
    requests = 0;
    errors = 0;
    timeouts = 0;
    bytes_in = 0;
    bytes_out = 0;
    latency = Array.make bucket_count 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let connection_opened t =
  locked t (fun () ->
      t.connections_accepted <- t.connections_accepted + 1;
      t.connections_active <- t.connections_active + 1)

let connection_closed t =
  locked t (fun () -> t.connections_active <- t.connections_active - 1)

let bucket_of_us us =
  let rec go b bound = if us <= bound || b = bucket_count - 1 then b else go (b + 1) (bound * 2) in
  go 0 1

(* Upper bound of bucket [b] in microseconds. *)
let bucket_bound_us b = 1 lsl b

let observe t ~elapsed ~bytes_in ~bytes_out ~outcome =
  locked t (fun () ->
      t.requests <- t.requests + 1;
      t.bytes_in <- t.bytes_in + bytes_in;
      t.bytes_out <- t.bytes_out + bytes_out;
      (match outcome with
      | `Ok -> ()
      | `Error -> t.errors <- t.errors + 1
      | `Timeout ->
        t.errors <- t.errors + 1;
        t.timeouts <- t.timeouts + 1);
      let us = int_of_float (elapsed *. 1e6) in
      let b = bucket_of_us (max us 1) in
      t.latency.(b) <- t.latency.(b) + 1)

let percentile_us t q =
  let total = Array.fold_left ( + ) 0 t.latency in
  if total = 0 then 0
  else begin
    let target = int_of_float (ceil (q *. float_of_int total)) in
    let acc = ref 0 and result = ref (bucket_bound_us (bucket_count - 1)) in
    (try
       Array.iteri
         (fun b n ->
           acc := !acc + n;
           if !acc >= target then begin
             result := bucket_bound_us b;
             raise Exit
           end)
         t.latency
     with Exit -> ());
    !result
  end

(* A stable snapshot as (name, value) pairs — the [:server-stats]
   protocol verb ships exactly this, Codec-encoded as a map. *)
let snapshot t =
  locked t (fun () ->
      let open Cypher_values.Value in
      [
        ("connections_accepted", Int t.connections_accepted);
        ("connections_active", Int t.connections_active);
        ("requests", Int t.requests);
        ("errors", Int t.errors);
        ("timeouts", Int t.timeouts);
        ("bytes_in", Int t.bytes_in);
        ("bytes_out", Int t.bytes_out);
        ("latency_p50_us", Int (percentile_us t 0.50));
        ("latency_p95_us", Int (percentile_us t 0.95));
      ])
