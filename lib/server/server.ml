(* The concurrent query server.

   One process, one shared {!Cypher_storage.Store}, thread-per-connection
   (threads.posix).  Every connection gets a private
   {!Cypher_session.Session} — its own plan cache and its own transaction
   state.

   Concurrency discipline is MVCC (see DESIGN.md):
   - every statement is classified read/write from its AST up front
     ({!Cypher_engine.Engine.classify_cached}), so a write executes
     exactly once and a read never speculates;
   - a read pins the latest committed version ({!Store.snapshot} — a
     pointer read behind a short mutex) and runs against it with NO
     lock held: a slow analytic read cannot stall writers, and a write
     burst cannot starve readers;
   - writers serialise only among themselves on the store's writer
     lock; their committed batches go through the store's WAL group
     commit — the writer lock is released before the fsync wait, so
     the next writer executes while the previous group syncs and
     concurrent commits share one fsync;
   - an explicit transaction holds the writer lock from BEGIN to the
     outermost COMMIT/ROLLBACK; readers on other connections keep
     reading the committed version throughout.

   Timeouts are cooperative: the engine is not preemptible, so the
   server measures each request's wall-clock time and converts an
   overrun into a typed [Timeout] error (the work is complete but its
   result is withheld); socket-level timeouts bound dead peers. *)

module Store = Cypher_storage.Store
module Session = Cypher_session.Session
module Engine = Cypher_engine.Engine
module Config = Cypher_semantics.Config
module Value = Cypher_values.Value
module Registry = Cypher_obs.Registry
module Trace = Cypher_obs.Trace
module Slowlog = Cypher_obs.Slowlog
module Qstats = Cypher_obs.Qstats
module Ivm = Cypher_ivm.Ivm

type config = {
  host : string;
  port : int;  (* 0 picks an ephemeral port; read it back with {!port} *)
  backlog : int;
  max_frame : int;
  request_timeout : float;  (* seconds; 0. disables the check *)
  replica_of : (string * int) option;
      (* [Some (host, port)] makes this server a read-only replica of
         the primary at that address: writes and BEGIN are rejected
         with [Read_only_replica] naming the primary.  The server does
         not replicate by itself — a {!Cypher_replication.Replica}
         applies the stream into the shared store. *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7688;
    backlog = 64;
    max_frame = Protocol.default_max_frame;
    request_timeout = 30.;
    replica_of = None;
  }

let m_readonly_rejected =
  Registry.counter ~help:"writes rejected because this server is a replica"
    "cypher_server_readonly_rejected_total"

let m_stale_reads =
  Registry.counter
    ~help:"reads rejected because the replica could not reach min_seq in time"
    "cypher_server_stale_reads_total"

(* Snapshot bootstrap chunk size: large enough that a 1M-node graph
   ships in a handful of round trips, small enough to stay far under
   the frame limit. *)
let boot_chunk_limit = 4 * 1024 * 1024

type t = {
  config : config;
  store : Store.t;
  schema : Cypher_schema.Schema.t;
  mode : Engine.mode;
  metrics : Metrics.t;
  (* maintained views, fed by the store's publication hook — on a
     primary every group flush, on a replica every applied replication
     batch, so subscriptions work identically on both *)
  views : Ivm.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  mutable stopping : bool;
  state_lock : Mutex.t;
  mutable conn_threads : Thread.t list;
  mutable accept_thread : Thread.t option;
}

let port t = t.bound_port
let metrics t = t.metrics
let store t = t.store
let views t = t.views

(* --- error classification --------------------------------------------- *)

(* Engine and session errors arrive as rendered strings ("parse error:
   …"); map the stable prefixes back to typed wire errors. *)
let classify msg =
  let has p =
    String.length msg >= String.length p && String.sub msg 0 (String.length p) = p
  in
  if has "parse error" then Protocol.Parse_error
  else if has "syntax error" then Protocol.Syntax_error
  else if has "type error" then Protocol.Type_error
  else if has "unsupported" then Protocol.Unsupported
  else Protocol.Runtime_error

let error_response kind message = Protocol.Error { kind; message }

let table_response ?(seq = 0) table =
  let columns = Cypher_table.Table.fields table in
  let rows =
    Cypher_table.Table.fold_left
      (fun acc row ->
        List.map (Cypher_table.Record.find_or_null row) columns :: acc)
      [] table
  in
  Protocol.Result { columns; rows = List.rev rows; seq }

(* --- per-connection state --------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  conn_id : int;  (* process-unique; labels slowlog lines and spans *)
  session : Session.t;
  (* the batch captured by the session's [on_commit] hook, handed to the
     store's group commit once the writer lock can be released *)
  pending : Session.logged list ref;
  mutable tx_depth : int;  (* > 0 iff this connection holds the writer lock *)
  (* the snapshot image pinned by a bootstrap ('B' at offset 0), so
     every later chunk comes from the same committed version even while
     writes keep landing *)
  mutable boot_pin : string option;
}

let is_keyword text kw = String.uppercase_ascii (String.trim text) = kw

let store_health t conn =
  let stats = Session.cache_stats conn.session in
  [
    ("wal_records", Value.Int (Store.wal_records t.store));
    ("last_seq", Value.Int (Store.last_seq t.store));
    ( "snapshot_age_s",
      match Store.snapshot_age t.store with
      | Some age -> Value.Float age
      | None -> Value.Null );
    ("plan_cache_hits", Value.Int stats.Engine.cache_hits);
    ("plan_cache_misses", Value.Int stats.Engine.cache_misses);
    ("plan_cache_replans", Value.Int stats.Engine.cache_replans);
    ("plan_cache_evictions", Value.Int stats.Engine.cache_evictions);
  ]

(* Hands the batch captured by the connection's [on_commit] hook to the
   store's group commit and releases the writer lock.  The lock is
   dropped *before* the fsync wait: the next writer executes while this
   group syncs, which is what lets concurrent commits share one fsync.
   Called with the writer lock held; always releases it. *)
let finish_commit t conn =
  let batch = !(conn.pending) in
  conn.pending := [];
  match batch with
  | [] ->
    (* write-classified but effect-free (or read-only in a tx): nothing
       to log, nothing to publish *)
    Store.writer_unlock t.store;
    Ok ()
  | batch ->
    let ticket =
      Store.enqueue_commit t.store ~graph:(Session.graph conn.session) batch
    in
    Store.writer_unlock t.store;
    Trace.with_span "group_commit" (fun () ->
        Store.await_commit t.store ticket)

(* A write (or BEGIN) that reaches a replica is a routing mistake, not
   a server fault: the typed rejection names the primary so the client
   can redirect without parsing prose. *)
let read_only_rejection t =
  Registry.incr m_readonly_rejected;
  let where =
    match t.config.replica_of with
    | Some (host, port) -> Printf.sprintf "; writes go to %s:%d" host port
    | None -> ""
  in
  error_response Protocol.Read_only_replica
    ("this server is a read-only replica" ^ where)

(* Session consistency: a client that has seen commit seq [n] may ask a
   replica to serve reads no staler than [n].  The wait is a bounded
   poll — replication lag is normally well under a millisecond of apply
   time, so a short budget covers it; a replica that cannot catch up in
   time answers with a typed [Stale_replica] and the client falls back
   to the primary rather than blocking indefinitely. *)
let await_freshness t ~min_seq ~wait_ms =
  let deadline =
    Cypher_obs.Clock.now_ns () + (wait_ms * 1_000_000)
  in
  let rec wait () =
    if Store.last_seq t.store >= min_seq then Ok ()
    else if Cypher_obs.Clock.now_ns () >= deadline then begin
      Registry.incr m_stale_reads;
      Error
        (error_response Protocol.Stale_replica
           (Printf.sprintf
              "replica is at seq %d, read requires %d (waited %dms)"
              (Store.last_seq t.store) min_seq wait_ms))
    end
    else begin
      Thread.delay 0.001;
      wait ()
    end
  in
  wait ()

(* Executes one Query request.  Caller handles metrics and framing.
   [parallel] is the request's worker-domain budget for read execution;
   it is sticky on the connection's session (like parameters), so a
   client can set it once per connection.  [min_seq] is the read's
   freshness floor (see {!await_freshness}). *)
let execute t conn ~parallel ~min_seq text params =
  (match parallel with
  | Some n -> Session.set_parallel conn.session n
  | None -> ());
  let replica = t.config.replica_of <> None in
  let fresh =
    match min_seq with
    | Some (seq, wait_ms) -> await_freshness t ~min_seq:seq ~wait_ms
    | None -> Ok ()
  in
  match fresh with
  | Error stale -> stale
  | Ok () ->
  if is_keyword text "BEGIN" then begin
    (* a transaction exists to write; a replica refuses it up front
       rather than failing at the first update inside it *)
    if replica then read_only_rejection t
    else begin
      if conn.tx_depth = 0 then begin
        Trace.with_span "writer_lock" (fun () -> Store.writer_lock t.store);
        Session.set_graph conn.session (Store.head t.store)
      end;
      Session.begin_tx conn.session;
      conn.tx_depth <- conn.tx_depth + 1;
      Protocol.Result { columns = []; rows = []; seq = 0 }
    end
  end
  else if is_keyword text "COMMIT" then begin
    if conn.tx_depth = 0 then
      error_response Protocol.Runtime_error "runtime error: no open transaction"
    else
      match Trace.with_span "commit" (fun () -> Session.commit conn.session) with
      | Ok () ->
        conn.tx_depth <- conn.tx_depth - 1;
        if conn.tx_depth = 0 then begin
          match finish_commit t conn with
          | Ok () ->
            Protocol.Result
              { columns = []; rows = []; seq = Store.last_seq t.store }
          | Error e ->
            error_response Protocol.Server_error ("commit failed: " ^ e)
        end
        else Protocol.Result { columns = []; rows = []; seq = 0 }
      | Error e ->
        (* an outermost commit that fails validation has rolled the
           whole transaction back: nothing was published or logged *)
        conn.tx_depth <- 0;
        conn.pending := [];
        Store.writer_unlock t.store;
        error_response (classify e) e
  end
  else if is_keyword text "ROLLBACK" then begin
    if conn.tx_depth = 0 then
      error_response Protocol.Runtime_error "runtime error: no open transaction"
    else
      match Session.rollback conn.session with
      | Ok () ->
        conn.tx_depth <- conn.tx_depth - 1;
        if conn.tx_depth = 0 then begin
          conn.pending := [];
          Store.writer_unlock t.store
        end;
        Protocol.Result { columns = []; rows = []; seq = 0 }
      | Error e -> error_response (classify e) e
  end
  else if conn.tx_depth > 0 then begin
    (* inside a transaction: the writer lock is already held and the
       session's working graph carries the uncommitted state *)
    Session.set_params conn.session params;
    match Session.run conn.session text with
    | Ok table -> table_response table
    | Error e -> error_response (classify e) e
  end
  else begin
    (* Auto-commit statement, classified from the AST up front so it
       executes exactly once. *)
    match
      Engine.classify_cached ~cache:(Session.plan_cache conn.session) text
    with
    | Engine.Read_only -> (
      (* MVCC read: pin the latest committed version and run with no
         lock held — a writer can commit concurrently and a write burst
         cannot delay this request. *)
      let g = Store.snapshot t.store in
      let config =
        Config.with_parallel
          (Session.parallel conn.session)
          (Config.with_params params Config.default)
      in
      match
        Engine.query_cached
          ~cache:(Session.plan_cache conn.session)
          ~config ~mode:t.mode g text
      with
      | Ok outcome -> table_response outcome.Engine.table
      | Error e -> error_response (classify e) e)
    | Engine.Update when replica -> read_only_rejection t
    | Engine.Update -> (
      (* Single-writer path: rebase the session on the latest committed
         version, execute once (validation + capture of the logged
         batch), then group-commit.  The lock acquisition is spanned so
         the slow-query log can tell waiting from work. *)
      Trace.with_span "writer_lock" (fun () -> Store.writer_lock t.store);
      let result =
        match
          Session.set_graph conn.session (Store.head t.store);
          Session.set_params conn.session params;
          conn.pending := [];
          Session.run conn.session text
        with
        | r -> r
        | exception e ->
          Store.writer_unlock t.store;
          raise e
      in
      match result with
      | Ok table -> (
        match finish_commit t conn with
        | Ok () -> table_response ~seq:(Store.last_seq t.store) table
        | Error e ->
          error_response Protocol.Server_error ("commit failed: " ^ e))
      | Error e ->
        Store.writer_unlock t.store;
        error_response (classify e) e)
  end

(* The whole process-wide registry — engine, storage and server series
   alike — as protocol stats pairs, for the 'M' verb. *)
let registry_pairs () =
  List.map
    (function
      | Registry.Int_sample (name, v) -> (name, Value.Int v)
      | Registry.Float_sample (name, v) -> (name, Value.Float v))
    (Registry.samples ())

(* One row per registered view, as an ordinary Result so every client
   renders it like a query. *)
let view_list_response t =
  let columns =
    [
      "name"; "query"; "seq"; "rows"; "mode"; "refreshes"; "incremental";
      "fallback"; "subscribers"; "error";
    ]
  in
  let rows =
    List.map
      (fun (i : Ivm.view_info) ->
        [
          Value.String i.Ivm.vi_name;
          Value.String i.Ivm.vi_query;
          Value.Int i.Ivm.vi_seq;
          Value.Int i.Ivm.vi_rows;
          Value.String (if i.Ivm.vi_incremental then "incremental" else "fallback");
          Value.Int i.Ivm.vi_refreshes;
          Value.Int i.Ivm.vi_incrementals;
          Value.Int i.Ivm.vi_fallbacks;
          Value.Int i.Ivm.vi_subscribers;
          (match i.Ivm.vi_error with
          | Some e -> Value.String e
          | None -> Value.Null);
        ])
      (Ivm.view_infos t.views)
  in
  Protocol.Result { columns; rows; seq = Ivm.last_refreshed_seq t.views }

let delta_response (f : Ivm.frame) =
  Protocol.Delta
    {
      view = f.Ivm.f_view;
      seq = f.Ivm.f_seq;
      init = f.Ivm.f_init;
      columns = f.Ivm.f_columns;
      added = f.Ivm.f_added;
      removed = f.Ivm.f_removed;
      trace = f.Ivm.f_trace;
    }

(* Per-fingerprint workload statistics ('T'), as an ordinary Result
   table so every client renders it like a query.  Served identically
   by primaries and replicas — a replica's table reflects the reads it
   served plus the writes it applied. *)
let query_stats_response () =
  let columns =
    [
      "fingerprint"; "query"; "calls"; "errors"; "rows"; "db_hits";
      "plan_cache_hits"; "total_ms"; "p50_us"; "p95_us"; "max_us";
      "last_trace_id";
    ]
  in
  let rows =
    List.map
      (fun (s : Qstats.stat) ->
        [
          Value.String (Trace.id_to_hex s.Qstats.s_hash);
          Value.String s.Qstats.s_query;
          Value.Int s.Qstats.s_calls;
          Value.Int s.Qstats.s_errors;
          Value.Int s.Qstats.s_rows;
          Value.Int s.Qstats.s_db_hits;
          Value.Int s.Qstats.s_cache_hits;
          Value.Float (float_of_int s.Qstats.s_total_us /. 1e3);
          Value.Int s.Qstats.s_p50_us;
          Value.Int s.Qstats.s_p95_us;
          Value.Int s.Qstats.s_max_us;
          (if s.Qstats.s_last_trace = 0 then Value.Null
           else Value.String (Trace.id_to_hex s.Qstats.s_last_trace));
        ])
      (Qstats.snapshot ())
  in
  Protocol.Result { columns; rows; seq = 0 }

(* Cluster-health summary ('C'): one flat stats map an operator can eye
   in a second — role, watermark, replication lag, view freshness and
   fallback state, group-commit batching, connections, subscriptions. *)
let cluster_health_response t =
  let sample name =
    List.find_map
      (function
        | Registry.Int_sample (n, v) when String.equal n name -> Some v
        | _ -> None)
      (Registry.samples ())
  in
  let counter name = Option.value ~default:0 (sample name) in
  let infos = Ivm.view_infos t.views in
  let subs =
    List.fold_left (fun a (i : Ivm.view_info) -> a + i.Ivm.vi_subscribers) 0 infos
  in
  let fallbacks =
    List.length (List.filter (fun (i : Ivm.view_info) -> not i.Ivm.vi_incremental) infos)
  in
  let view_min_seq =
    List.fold_left
      (fun acc (i : Ivm.view_info) ->
        match acc with
        | None -> Some i.Ivm.vi_seq
        | Some m -> Some (min m i.Ivm.vi_seq))
      None infos
  in
  let flushes = counter "cypher_storage_group_flushes_total" in
  let members = counter "cypher_storage_group_members_total" in
  let role, primary =
    match t.config.replica_of with
    | Some (host, port) -> ("replica", Value.String (Printf.sprintf "%s:%d" host port))
    | None -> ("primary", Value.Null)
  in
  [
    ("role", Value.String role);
    ("primary", primary);
    ("last_seq", Value.Int (Store.last_seq t.store));
    ( "replication_lag_records",
      match sample "cypher_repl_lag_records" with
      | Some v -> Value.Int v
      | None -> Value.Null );
    ("views", Value.Int (List.length infos));
    ("views_fallback", Value.Int fallbacks);
    ( "views_min_seq",
      match view_min_seq with Some s -> Value.Int s | None -> Value.Null );
    ("subscriptions", Value.Int subs);
    ("group_commit_flushes", Value.Int flushes);
    ("group_commit_members", Value.Int members);
    ( "group_commit_avg_batch",
      if flushes = 0 then Value.Null
      else Value.Float (float_of_int members /. float_of_int flushes) );
    ("connections_active", Value.Int (Metrics.active_connections t.metrics));
    ("query_fingerprints", Value.Int (List.length (Qstats.snapshot ())));
  ]

(* The shared request tail: stamp the time budget, frame the response,
   record metrics. *)
let finish_request t conn ~started_ns ~timeout ~payload response =
  let elapsed =
    float_of_int (Cypher_obs.Clock.now_ns () - started_ns) /. 1e9
  in
  let timed_out = timeout > 0. && elapsed > timeout in
  let response =
    if timed_out then
      error_response Protocol.Timeout
        (Printf.sprintf "request exceeded its %.3fs time budget (took %.3fs)"
           timeout elapsed)
    else response
  in
  let encoded = Protocol.encode_response response in
  Protocol.write_frame conn.fd encoded;
  let outcome =
    if timed_out then `Timeout
    else match response with Protocol.Error _ -> `Error | _ -> `Ok
  in
  Metrics.observe t.metrics ~elapsed
    ~bytes_in:(String.length payload + 4)
    ~bytes_out:(String.length encoded + 4)
    ~outcome

let rec handle_request t conn payload =
  (* monotonic, so the timeout check and the latency histogram cannot be
     skewed by an NTP wall-clock step mid-request *)
  let started_ns = Cypher_obs.Clock.now_ns () in
  let timeout = ref t.config.request_timeout in
  match Protocol.decode_request payload with
  | exception Protocol.Protocol_error msg ->
    finish_request t conn ~started_ns ~timeout:!timeout ~payload
      (error_response Protocol.Protocol_violation msg)
  | Protocol.Subscribe { query } ->
    serve_subscription t conn ~started_ns ~payload query
  | req ->
  let response =
    match req with
    | Subscribe _ -> assert false (* handled above *)
    | View_materialize { name; query } -> (
      (* registration re-executes the query once; exempt it from the
         request budget like the other deliberately-slow verbs *)
      timeout := 0.;
      match Ivm.materialize t.views ~name ~query with
      | Ok seq -> Protocol.Result { columns = []; rows = []; seq }
      | Error e -> error_response (classify e) e)
    | View_unmaterialize { name } -> (
      match Ivm.unmaterialize t.views name with
      | Ok () -> Protocol.Result { columns = []; rows = []; seq = 0 }
      | Error e -> error_response Protocol.Runtime_error e)
    | View_list -> view_list_response t
    | View_read { name; min_seq; wait_ms } -> (
      (* the freshness wait is this verb's job, like Repl_fetch *)
      timeout := 0.;
      match Ivm.read ~min_seq ~wait_ms t.views name with
      | Ok (table, seq) -> table_response ~seq table
      | Error Ivm.Unknown_view ->
        error_response Protocol.Runtime_error
          (Printf.sprintf "runtime error: no view named %s" name)
      | Error (Ivm.Stale at) ->
        Registry.incr m_stale_reads;
        error_response Protocol.Stale_replica
          (Printf.sprintf "view %s is at seq %d, read requires %d (waited %dms)"
             name at min_seq wait_ms)
      | Error (Ivm.Failed e) -> error_response Protocol.Server_error e)
    | Server_stats -> Protocol.Stats (Metrics.snapshot t.metrics)
    | Store_health -> Protocol.Stats (store_health t conn)
    | Metrics -> Protocol.Stats (registry_pairs ())
    | Query_stats -> query_stats_response ()
    | Cluster_health -> Protocol.Stats (cluster_health_response t)
    | Repl_snapshot { offset; chunk } ->
      (* Bootstrap: the first chunk pins the committed image on the
         connection, so a transfer overlapped by writes still ships one
         consistent version; the pin is dropped with the last chunk. *)
      let image =
        match conn.boot_pin with
        | Some img when offset > 0 -> img
        | _ ->
          let img = Store.encode_committed_snapshot t.store in
          conn.boot_pin <- Some img;
          img
      in
      let total = String.length image in
      if offset > total then
        error_response Protocol.Protocol_violation
          (Printf.sprintf "snapshot offset %d past image end %d" offset total)
      else begin
        let chunk =
          if chunk <= 0 then boot_chunk_limit else min chunk boot_chunk_limit
        in
        let len = min chunk (total - offset) in
        let data = String.sub image offset len in
        if offset + len >= total then conn.boot_pin <- None;
        Protocol.Repl_chunk { total; data }
      end
    | Repl_fetch { from_seq; max_records; wait_ms } ->
      (* Long-poll tail: answer as soon as there is anything at or past
         [from_seq], or after [wait_ms] with an empty batch.  Exempt
         from the request time budget — waiting is this verb's job. *)
      timeout := 0.;
      let max_records = max 1 (min max_records 65_536) in
      let deadline =
        Cypher_obs.Clock.now_ns () + (wait_ms * 1_000_000)
      in
      let rec poll () =
        let f = Store.fetch_since t.store ~from_seq ~max_records in
        if
          f.Store.fr_records <> [] || f.Store.fr_resync || t.stopping
          || Cypher_obs.Clock.now_ns () >= deadline
        then f
        else begin
          Thread.delay 0.002;
          poll ()
        end
      in
      let f = poll () in
      Protocol.Repl_batch
        {
          last_seq = f.Store.fr_last_seq;
          resync = f.Store.fr_resync;
          records = List.map snd f.Store.fr_records;
        }
    | Query { text; params; options } -> (
      (match List.assoc_opt "timeout_ms" options with
      | Some (Value.Int ms) -> timeout := float_of_int ms /. 1000.
      | _ -> ());
      (* "explain"/"profile" request options let remote clients ask for
         the plan without editing their query text; they compose with
         the engine's own prefix handling. *)
      let flag name =
        match List.assoc_opt name options with
        | Some (Value.Bool b) -> b
        | _ -> false
      in
      let text =
        if flag "explain" then "EXPLAIN " ^ text
        else if flag "profile" then "PROFILE " ^ text
        else text
      in
      (* "parallel" (Int n) sets the read-execution worker budget for
         this connection's session; writes stay single-writer *)
      let parallel =
        match List.assoc_opt "parallel" options with
        | Some (Value.Int n) when n >= 1 -> Some n
        | _ -> None
      in
      (* "min_seq" (Int) demands the store have applied at least that
         commit before the read runs; "min_seq_wait_ms" bounds the wait
         (default 100ms) before a typed Stale_replica answer *)
      let min_seq =
        match List.assoc_opt "min_seq" options with
        | Some (Value.Int s) when s > 0 ->
          let wait_ms =
            match List.assoc_opt "min_seq_wait_ms" options with
            | Some (Value.Int w) when w >= 0 -> w
            | _ -> 100
          in
          Some (s, wait_ms)
        | _ -> None
      in
      (* "trace_id"/"span_id" (Int) carry the caller's distributed
         trace context: installed on this connection thread for the
         request, so engine and storage spans (and the commit lineage
         they start) nest under the remote parent span *)
      let run () = execute t conn ~parallel ~min_seq text params in
      let traced () =
        match List.assoc_opt "trace_id" options with
        | Some (Value.Int tid) when tid <> 0 ->
          let parent =
            match List.assoc_opt "span_id" options with
            | Some (Value.Int sid) -> sid
            | _ -> 0
          in
          (* a connection thread never has an enclosing context, so
             install/clear directly instead of [with_context]'s
             save/restore *)
          Trace.set_context (Some { Trace.trace_id = tid; parent_span = parent });
          (match run () with
          | r ->
            Trace.set_context None;
            r
          | exception e ->
            Trace.set_context None;
            raise e)
        | _ -> run ()
      in
      match traced () with
      | response -> response
      | exception e ->
        error_response Protocol.Server_error
          ("internal error: " ^ Printexc.to_string e))
  in
  finish_request t conn ~started_ns ~timeout:!timeout ~payload response

(* Push mode: stream one Delta frame per view refresh until the client
   sends any frame back (that frame is then handled as a normal request,
   ending the subscription) or the peer/view goes away.  The opening
   frame is the view's full current state ([init]); every later frame
   carries one refresh's row deltas, in commit order. *)
and serve_subscription t conn ~started_ns ~payload query =
  match Ivm.subscribe t.views ~query with
  | Error e ->
    finish_request t conn ~started_ns ~timeout:0. ~payload
      (error_response (classify e) e)
  | Ok sub ->
    let next_request = ref None in
    let push f =
      Protocol.write_frame conn.fd
        (Protocol.encode_response (delta_response f))
    in
    let rec stream () =
      if not t.stopping then
        match Unix.select [ conn.fd ] [] [] 0. with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> stream ()
        | [ _ ], _, _ -> (
          (* the client spoke: end the stream, then serve that frame *)
          match Protocol.read_frame ~max_frame:t.config.max_frame conn.fd with
          | None -> ()
          | Some p -> next_request := Some p)
        | _ -> (
          match Ivm.next_frame t.views sub ~timeout_s:0.1 with
          | `Frame f ->
            push f;
            stream ()
          | `Timeout -> stream ()
          | `Closed ->
            (* the view was dropped or this subscriber fell too far
               behind: a typed end-of-stream, then back to request mode *)
            Protocol.write_frame conn.fd
              (Protocol.encode_response
                 (error_response Protocol.Server_error "subscription closed")))
    in
    Fun.protect
      ~finally:(fun () -> Ivm.unsubscribe t.views sub)
      (fun () -> stream ());
    let elapsed =
      float_of_int (Cypher_obs.Clock.now_ns () - started_ns) /. 1e9
    in
    Metrics.observe t.metrics ~elapsed
      ~bytes_in:(String.length payload + 4)
      ~bytes_out:0 ~outcome:`Ok;
    (match !next_request with
    | Some p -> handle_request t conn p
    | None -> ())

(* Waits until [fd] is readable, in slices so shutdown is noticed; the
   answer also turns true on EOF (read_frame then reports it). *)
let rec readable t fd =
  if t.stopping then false
  else
    match Unix.select [ fd ] [] [] 0.2 with
    | [], _, _ -> readable t fd
    | _ -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> readable t fd

let next_conn_id = Atomic.make 1

let serve_connection t fd =
  Metrics.connection_opened t.metrics;
  (* the commit hook only captures the batch: the connection decides
     when to hand it to the group commit, because the writer lock must
     be released first *)
  let pending = ref [] in
  let conn =
    {
      fd;
      conn_id = Atomic.fetch_and_add next_conn_id 1;
      session =
        Session.create ~schema:t.schema ~mode:t.mode
          ~on_commit:(fun c -> pending := c.Session.c_batch)
          (Store.snapshot t.store);
      pending;
      tx_depth = 0;
      boot_pin = None;
    }
  in
  (* label this connection thread: the engine's slow-query lines carry
     the connection they ran on *)
  Slowlog.set_conn (Some (Printf.sprintf "conn-%d" conn.conn_id));
  Fun.protect
    ~finally:(fun () ->
      Slowlog.set_conn None;
      (* a connection that dies mid-transaction must not keep the store
         locked; its uncommitted changes were never published or logged,
         so dropping them is exactly a rollback *)
      if conn.tx_depth > 0 then begin
        conn.tx_depth <- 0;
        conn.pending := [];
        Store.writer_unlock t.store
      end;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Metrics.connection_closed t.metrics)
    (fun () ->
      let rec loop () =
        if readable t fd then
          match Protocol.read_frame ~max_frame:t.config.max_frame fd with
          | None -> () (* client closed *)
          | Some payload ->
            handle_request t conn payload;
            loop ()
      in
      try loop () with
      | Protocol.Protocol_error msg ->
        (* oversized or malformed frame: report once, then close — the
           stream cannot be resynchronised *)
        (try
           Protocol.write_frame fd
             (Protocol.encode_response
                (error_response Protocol.Protocol_violation msg))
         with _ -> ());
        Metrics.observe t.metrics ~elapsed:0. ~bytes_in:0 ~bytes_out:0
          ~outcome:`Error
      | Unix.Unix_error _ -> ())

let accept_loop t =
  let rec loop () =
    if not t.stopping then begin
      match Unix.accept t.listen_fd with
      | fd, _ ->
        let thread = Thread.create (fun () -> serve_connection t fd) () in
        Mutex.lock t.state_lock;
        t.conn_threads <- thread :: t.conn_threads;
        Mutex.unlock t.state_lock;
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ ->
        (* listen socket closed by [stop] *)
        ()
    end
  in
  loop ()

(* A peer that disappears mid-write must surface as EPIPE on the write,
   not kill the process. *)
let ignore_sigpipe () =
  match Sys.os_type with
  | "Unix" -> (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())
  | _ -> ()

let start ?(config = default_config) ?(schema = Cypher_schema.Schema.empty)
    ?(mode = Engine.Planned) store =
  ignore_sigpipe ();
  (* a server always collects per-fingerprint statement statistics —
     that is what the 'T' verb and [:queries] report; benchmarks that
     want the untraced floor switch it back off *)
  Qstats.set_enabled true;
  match Unix.inet_addr_of_string config.host with
  | exception Failure _ -> Error ("invalid listen address: " ^ config.host)
  | addr -> (
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    match Unix.bind fd (Unix.ADDR_INET (addr, config.port)) with
    | exception Unix.Unix_error (err, _, _) ->
      Unix.close fd;
      Error
        (Printf.sprintf "cannot bind %s:%d: %s" config.host config.port
           (Unix.error_message err))
    | () ->
      Unix.listen fd config.backlog;
      let bound_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> config.port
      in
      let t =
        {
          config;
          store;
          schema;
          mode;
          metrics = Metrics.create ();
          views = Ivm.attach ~mode store;
          listen_fd = fd;
          bound_port;
          stopping = false;
          state_lock = Mutex.create ();
          conn_threads = [];
          accept_thread = None;
        }
      in
      t.accept_thread <- Some (Thread.create accept_loop t);
      Ok t)

(* Graceful shutdown: stop accepting, let every connection finish its
   in-flight request (the per-connection loop re-checks [stopping] at
   each frame boundary), then checkpoint and close the WAL. *)
let stop t =
  t.stopping <- true;
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
   with Unix.Unix_error _ -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Option.iter Thread.join t.accept_thread;
  t.accept_thread <- None;
  let threads =
    Mutex.lock t.state_lock;
    let th = t.conn_threads in
    t.conn_threads <- [];
    Mutex.unlock t.state_lock;
    th
  in
  List.iter Thread.join threads;
  Ivm.shutdown t.views;
  let checkpoint_result = Store.checkpoint t.store in
  Store.close t.store;
  checkpoint_result

(* Crash-equivalent shutdown: stop accepting and close the store WITHOUT
   checkpointing or draining gracefully — the WAL is left exactly as the
   last fsync wrote it, so reopening the directory exercises the real
   recovery path.  Used by the replication failure tests to kill a
   primary mid-stream. *)
let kill t =
  t.stopping <- true;
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
   with Unix.Unix_error _ -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Option.iter Thread.join t.accept_thread;
  t.accept_thread <- None;
  let threads =
    Mutex.lock t.state_lock;
    let th = t.conn_threads in
    t.conn_threads <- [];
    Mutex.unlock t.state_lock;
    th
  in
  List.iter Thread.join threads;
  Ivm.shutdown t.views;
  Store.close t.store

let wait t = Option.iter Thread.join t.accept_thread
