(* The wire protocol: length-prefixed frames over TCP, payloads encoded
   with the storage codec so the full Cypher value domain (NaN floats,
   temporals, nodes, paths…) round-trips between client and server
   exactly as it round-trips to disk.

   Frame:    u32-le payload length | payload
   Payload:  1 verb byte | verb-specific body (Codec-encoded)

   Requests:
     'Q'  query       text, #params, (name, value)*, #options, (name, value)*
     'S'  server-stats  (empty body)  — the [:server-stats] verb
     'H'  store-health  (empty body)  — WAL/snapshot/plan-cache counters
     'M'  metrics       (empty body)  — the whole process-wide registry
                                        (engine + storage + server series)
     'B'  repl-snapshot  offset, chunk — one chunk of the bootstrap
                                        snapshot (replication)
     'F'  repl-fetch   from_seq, max_records, wait_ms — long-poll for
                                        framed WAL records (replication)
     'V'  view-op      op byte, then: 0 materialize (name, query),
                                      1 unmaterialize (name), 2 list,
                                      3 read (name, min_seq, wait_ms)
     'U'  subscribe    query — switches the connection into push mode:
                                      the server streams 'D' frames until
                                      the client sends anything back
     'T'  query-stats   (empty body)  — per-fingerprint workload stats
                                        (the [:queries] verb), as a Result
     'C'  cluster-health (empty body) — role, replication lag, view
                                        freshness, group-commit and
                                        subscription summary, as Stats

   Responses:
     'R'  result      #columns, column names, #rows, values row-major,
                      seq (commit watermark; 0 for reads)
     'E'  error       kind byte, message
     'S'  stats       one Codec map value (string keys)
     'P'  repl-chunk  total size, chunk bytes
     'W'  repl-batch  last_seq, resync flag, #records, framed records
     'D'  delta       view name, seq, init flag, columns, added rows
                      (row values + multiplicity), removed rows, trace
                      (the id of the write that triggered the refresh;
                      0 for init frames and untraced writes) — one
                      subscription refresh (init: the full state)

   A malformed or oversized frame is a protocol error: the server
   replies with an 'E' frame where it still can, then closes. *)

open Cypher_values
module Codec = Cypher_storage.Codec

let default_max_frame = 16 * 1024 * 1024

exception Protocol_error of string
exception Closed

type request =
  | Query of {
      text : string;
      params : (string * Value.t) list;
      options : (string * Value.t) list;
          (* per-request overrides; the server understands
             "timeout_ms" : Int, "explain" : Bool and "profile" : Bool *)
    }
  | Server_stats
  | Store_health
  | Metrics
  | Repl_snapshot of { offset : int; chunk : int }
      (* one chunk of the bootstrap snapshot image, starting at byte
         [offset]; the first request (offset 0) pins the image on the
         connection so later chunks come from the same version *)
  | Repl_fetch of { from_seq : int; max_records : int; wait_ms : int }
      (* long-poll: records with seq >= [from_seq], blocking up to
         [wait_ms] when the primary has nothing new *)
  | View_materialize of { name : string; query : string }
      (* register a maintained view; replies with an empty Result
         carrying the seq the view was built at *)
  | View_unmaterialize of { name : string }
  | View_list  (* replies with a Result table describing every view *)
  | View_read of { name : string; min_seq : int; wait_ms : int }
      (* read a view's current contents; [min_seq] demands freshness
         (Stale_replica if unreachable within [wait_ms]) *)
  | Subscribe of { query : string }
      (* switch the connection into push mode: the server answers with
         a stream of Delta frames (first frame has [init = true]) until
         the client sends any frame back or closes *)
  | Query_stats
      (* per-fingerprint workload statistics (pg_stat_statements-style),
         served by primaries and replicas alike as a Result table *)
  | Cluster_health
      (* operator summary: role, commit watermark, replication lag,
         per-view freshness, group-commit and subscription counters *)

type error_kind =
  | Parse_error
  | Syntax_error
  | Type_error
  | Runtime_error
  | Unsupported
  | Timeout
  | Server_error
  | Protocol_violation
  | Read_only_replica
      (* a write reached a replica; the message names the primary *)
  | Stale_replica
      (* a read demanded [min_seq] freshness the replica could not
         reach within its wait budget *)

type response =
  | Result of { columns : string list; rows : Value.t list list; seq : int }
      (* [seq]: the store's commit watermark after a write (what the
         client's session-consistency high-water mark tracks); 0 for
         reads and mid-transaction statements *)
  | Error of { kind : error_kind; message : string }
  | Stats of (string * Value.t) list
  | Repl_chunk of { total : int; data : string }
  | Repl_batch of { last_seq : int; resync : bool; records : string list }
      (* [records] are framed WAL records, byte-identical to the
         primary's log (len · crc · payload) *)
  | Delta of {
      view : string;
      seq : int;  (* commit watermark the frame brings the view to *)
      init : bool;  (* the subscription's opening full-state frame *)
      columns : string list;
      added : (Value.t list * int) list;  (* row, multiplicity *)
      removed : (Value.t list * int) list;
      trace : int;
          (* trace id of the write whose refresh produced this frame;
             0 for init frames and untraced writes *)
    }

let error_kind_to_byte = function
  | Parse_error -> 0
  | Syntax_error -> 1
  | Type_error -> 2
  | Runtime_error -> 3
  | Unsupported -> 4
  | Timeout -> 5
  | Server_error -> 6
  | Protocol_violation -> 7
  | Read_only_replica -> 8
  | Stale_replica -> 9

let error_kind_of_byte = function
  | 0 -> Parse_error
  | 1 -> Syntax_error
  | 2 -> Type_error
  | 3 -> Runtime_error
  | 4 -> Unsupported
  | 5 -> Timeout
  | 6 -> Server_error
  | 7 -> Protocol_violation
  | 8 -> Read_only_replica
  | 9 -> Stale_replica
  | b -> raise (Protocol_error (Printf.sprintf "unknown error kind 0x%02x" b))

let error_kind_name = function
  | Parse_error -> "parse error"
  | Syntax_error -> "syntax error"
  | Type_error -> "type error"
  | Runtime_error -> "runtime error"
  | Unsupported -> "unsupported"
  | Timeout -> "timeout"
  | Server_error -> "server error"
  | Protocol_violation -> "protocol violation"
  | Read_only_replica -> "read-only replica"
  | Stale_replica -> "stale replica"

(* --- frame I/O -------------------------------------------------------- *)

let write_all fd data =
  let len = String.length data in
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + Unix.write_substring fd data !sent (len - !sent)
  done

(* Reads exactly [n] bytes; [None] on a clean EOF at a frame boundary.
   An EOF mid-read is a truncated frame and therefore a protocol
   error. *)
let read_exactly ?(at_boundary = false) fd n =
  let buf = Bytes.create n in
  let got = ref 0 in
  (try
     while !got < n do
       let r = Unix.read fd buf !got (n - !got) in
       if r = 0 then
         if !got = 0 && at_boundary then raise Closed
         else raise (Protocol_error "connection closed mid-frame");
       got := !got + r
     done
   with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
     if !got = 0 && at_boundary then raise Closed
     else raise (Protocol_error "connection reset mid-frame"));
  Bytes.unsafe_to_string buf

let write_frame fd payload =
  let n = String.length payload in
  let head = Bytes.create 4 in
  for i = 0 to 3 do
    Bytes.set head i (Char.chr ((n lsr (8 * i)) land 0xFF))
  done;
  write_all fd (Bytes.unsafe_to_string head ^ payload)

(* [None] on clean EOF.  Raises [Protocol_error] on an oversized frame —
   the caller must not try to resynchronise after that. *)
let read_frame ?(max_frame = default_max_frame) fd =
  match read_exactly ~at_boundary:true fd 4 with
  | exception Closed -> None
  | head ->
    let b i = Char.code head.[i] in
    let n = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
    if n < 1 then raise (Protocol_error "empty frame")
    else if n > max_frame then
      raise
        (Protocol_error
           (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
              max_frame))
    else Some (read_exactly fd n)

(* --- payload encode/decode -------------------------------------------- *)

let write_pairs buf pairs =
  Codec.write_uvarint buf (List.length pairs);
  List.iter
    (fun (k, v) ->
      Codec.write_string buf k;
      Codec.write_value buf v)
    pairs

let read_pairs r =
  let n = Codec.read_uvarint r in
  List.init n (fun _ ->
      let k = Codec.read_string r in
      (k, Codec.read_value r))

let encode_request req =
  let buf = Buffer.create 128 in
  (match req with
  | Query { text; params; options } ->
    Buffer.add_char buf 'Q';
    Codec.write_string buf text;
    write_pairs buf params;
    write_pairs buf options
  | Server_stats -> Buffer.add_char buf 'S'
  | Store_health -> Buffer.add_char buf 'H'
  | Metrics -> Buffer.add_char buf 'M'
  | Repl_snapshot { offset; chunk } ->
    Buffer.add_char buf 'B';
    Codec.write_uvarint buf offset;
    Codec.write_uvarint buf chunk
  | Repl_fetch { from_seq; max_records; wait_ms } ->
    Buffer.add_char buf 'F';
    Codec.write_uvarint buf from_seq;
    Codec.write_uvarint buf max_records;
    Codec.write_uvarint buf wait_ms
  | View_materialize { name; query } ->
    Buffer.add_char buf 'V';
    Buffer.add_char buf '\000';
    Codec.write_string buf name;
    Codec.write_string buf query
  | View_unmaterialize { name } ->
    Buffer.add_char buf 'V';
    Buffer.add_char buf '\001';
    Codec.write_string buf name
  | View_list ->
    Buffer.add_char buf 'V';
    Buffer.add_char buf '\002'
  | View_read { name; min_seq; wait_ms } ->
    Buffer.add_char buf 'V';
    Buffer.add_char buf '\003';
    Codec.write_string buf name;
    Codec.write_uvarint buf min_seq;
    Codec.write_uvarint buf wait_ms
  | Subscribe { query } ->
    Buffer.add_char buf 'U';
    Codec.write_string buf query
  | Query_stats -> Buffer.add_char buf 'T'
  | Cluster_health -> Buffer.add_char buf 'C');
  Buffer.contents buf

let encode_response resp =
  let buf = Buffer.create 256 in
  (match resp with
  | Result { columns; rows; seq } ->
    Buffer.add_char buf 'R';
    Codec.write_uvarint buf (List.length columns);
    List.iter (Codec.write_string buf) columns;
    Codec.write_uvarint buf (List.length rows);
    List.iter (fun row -> List.iter (Codec.write_value buf) row) rows;
    Codec.write_uvarint buf seq
  | Error { kind; message } ->
    Buffer.add_char buf 'E';
    Buffer.add_char buf (Char.chr (error_kind_to_byte kind));
    Codec.write_string buf message
  | Stats pairs ->
    Buffer.add_char buf 'S';
    write_pairs buf pairs
  | Repl_chunk { total; data } ->
    Buffer.add_char buf 'P';
    Codec.write_uvarint buf total;
    Codec.write_string buf data
  | Repl_batch { last_seq; resync; records } ->
    Buffer.add_char buf 'W';
    Codec.write_uvarint buf last_seq;
    Codec.write_uvarint buf (if resync then 1 else 0);
    Codec.write_uvarint buf (List.length records);
    List.iter (Codec.write_string buf) records
  | Delta { view; seq; init; columns; added; removed; trace } ->
    Buffer.add_char buf 'D';
    Codec.write_string buf view;
    Codec.write_uvarint buf seq;
    Codec.write_uvarint buf (if init then 1 else 0);
    Codec.write_uvarint buf (List.length columns);
    List.iter (Codec.write_string buf) columns;
    let write_side rows =
      Codec.write_uvarint buf (List.length rows);
      List.iter
        (fun (row, mult) ->
          List.iter (Codec.write_value buf) row;
          Codec.write_uvarint buf mult)
        rows
    in
    write_side added;
    write_side removed;
    Codec.write_uvarint buf trace);
  Buffer.contents buf

let decoding payload f =
  if String.length payload < 1 then raise (Protocol_error "empty payload");
  let r = Codec.reader ~pos:1 payload in
  match f payload.[0] r with
  | v ->
    if Codec.remaining r <> 0 then
      raise (Protocol_error "trailing bytes in frame");
    v
  | exception Codec.Corrupt msg ->
    raise (Protocol_error ("malformed frame: " ^ msg))

let decode_request payload =
  decoding payload (fun verb r ->
      match verb with
      | 'Q' ->
        let text = Codec.read_string r in
        let params = read_pairs r in
        let options = read_pairs r in
        Query { text; params; options }
      | 'S' -> Server_stats
      | 'H' -> Store_health
      | 'M' -> Metrics
      | 'B' ->
        let offset = Codec.read_uvarint r in
        let chunk = Codec.read_uvarint r in
        Repl_snapshot { offset; chunk }
      | 'F' ->
        let from_seq = Codec.read_uvarint r in
        let max_records = Codec.read_uvarint r in
        let wait_ms = Codec.read_uvarint r in
        Repl_fetch { from_seq; max_records; wait_ms }
      | 'V' -> (
        match Codec.read_uvarint r with
        | 0 ->
          let name = Codec.read_string r in
          let query = Codec.read_string r in
          View_materialize { name; query }
        | 1 -> View_unmaterialize { name = Codec.read_string r }
        | 2 -> View_list
        | 3 ->
          let name = Codec.read_string r in
          let min_seq = Codec.read_uvarint r in
          let wait_ms = Codec.read_uvarint r in
          View_read { name; min_seq; wait_ms }
        | op ->
          raise (Protocol_error (Printf.sprintf "unknown view op %d" op)))
      | 'U' -> Subscribe { query = Codec.read_string r }
      | 'T' -> Query_stats
      | 'C' -> Cluster_health
      | c -> raise (Protocol_error (Printf.sprintf "unknown request verb %C" c)))

let decode_response payload =
  decoding payload (fun verb r ->
      match verb with
      | 'R' ->
        let ncols = Codec.read_uvarint r in
        let columns = List.init ncols (fun _ -> Codec.read_string r) in
        let nrows = Codec.read_uvarint r in
        let rows =
          List.init nrows (fun _ ->
              List.init ncols (fun _ -> Codec.read_value r))
        in
        let seq = Codec.read_uvarint r in
        Result { columns; rows; seq }
      | 'E' ->
        let kind = error_kind_of_byte (Codec.read_uvarint r) in
        let message = Codec.read_string r in
        Error { kind; message }
      | 'S' -> Stats (read_pairs r)
      | 'P' ->
        let total = Codec.read_uvarint r in
        let data = Codec.read_string r in
        Repl_chunk { total; data }
      | 'W' ->
        let last_seq = Codec.read_uvarint r in
        let resync = Codec.read_uvarint r <> 0 in
        let n = Codec.read_uvarint r in
        let records = List.init n (fun _ -> Codec.read_string r) in
        Repl_batch { last_seq; resync; records }
      | 'D' ->
        let view = Codec.read_string r in
        let seq = Codec.read_uvarint r in
        let init = Codec.read_uvarint r <> 0 in
        let ncols = Codec.read_uvarint r in
        let columns = List.init ncols (fun _ -> Codec.read_string r) in
        let read_side () =
          let n = Codec.read_uvarint r in
          List.init n (fun _ ->
              let row = List.init ncols (fun _ -> Codec.read_value r) in
              let mult = Codec.read_uvarint r in
              (row, mult))
        in
        let added = read_side () in
        let removed = read_side () in
        let trace = Codec.read_uvarint r in
        Delta { view; seq; init; columns; added; removed; trace }
      | c ->
        raise (Protocol_error (Printf.sprintf "unknown response verb %C" c)))
