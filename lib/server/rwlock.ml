(* A writer-preferring readers–writer lock over the shared store.

   Read queries only ever *observe* a committed graph value (the graph
   itself is a persistent data structure), so any number of them may run
   at once; an update or commit must exclude both readers — so that no
   reader captures a graph the writer is about to supersede mid-request
   — and other writers, whose WAL appends and [Store.publish] must be
   serialised.  Waiting writers block new readers, otherwise a steady
   read load would starve commits forever. *)

type t = {
  m : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable readers : int;         (* active readers *)
  mutable writer : bool;         (* a writer holds the lock *)
  mutable waiting_writers : int;
}

let create () =
  {
    m = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    readers = 0;
    writer = false;
    waiting_writers = 0;
  }

let read_lock t =
  Mutex.lock t.m;
  while t.writer || t.waiting_writers > 0 do
    Condition.wait t.can_read t.m
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.m

let read_unlock t =
  Mutex.lock t.m;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.signal t.can_write;
  Mutex.unlock t.m

let write_lock t =
  Mutex.lock t.m;
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.can_write t.m
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writer <- true;
  Mutex.unlock t.m

let write_unlock t =
  Mutex.lock t.m;
  t.writer <- false;
  if t.waiting_writers > 0 then Condition.signal t.can_write
  else Condition.broadcast t.can_read;
  Mutex.unlock t.m

let with_read t f =
  read_lock t;
  Fun.protect ~finally:(fun () -> read_unlock t) f

let with_write t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f
