open Cypher_values
open Cypher_graph

exception Eval_error of string

let eval_error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let registry : (string, Graph.t -> Value.t list -> Value.t) Hashtbl.t =
  Hashtbl.create 64

let register name f = Hashtbl.replace registry name f
let is_known name = Hashtbl.mem registry (String.lowercase_ascii name)

let names () =
  Hashtbl.fold (fun k _ acc -> k :: acc) registry []
  |> List.sort_uniq String.compare

let apply g name args =
  match Hashtbl.find_opt registry (String.lowercase_ascii name) with
  | Some f -> f g args
  | None -> eval_error "unknown function: %s" name

(* --- helpers ------------------------------------------------------- *)

let arity name n f g args =
  if List.length args <> n then
    eval_error "%s expects %d argument(s), got %d" name n (List.length args)
  else f g args

let null_prop1 f _g args =
  match args with [ Value.Null ] -> Value.Null | [ v ] -> f v | _ -> assert false

let float1 name f =
  null_prop1 (function
    | Value.Int i -> Value.Float (f (float_of_int i))
    | Value.Float x -> Value.Float (f x)
    | v -> Value.type_error "%s: expected a number, got %s" name (Value.type_name v))

let string1 name f =
  null_prop1 (function
    | Value.String s -> f s
    | v -> Value.type_error "%s: expected a string, got %s" name (Value.type_name v))

let as_node name = function
  | Value.Node n -> n
  | v -> Value.type_error "%s: expected a node, got %s" name (Value.type_name v)

let as_rel name = function
  | Value.Rel r -> r
  | v ->
    Value.type_error "%s: expected a relationship, got %s" name (Value.type_name v)

(* --- entity functions ---------------------------------------------- *)

let fn_labels g = function
  | [ Value.Null ] -> Value.Null
  | [ v ] ->
    let n = as_node "labels" v in
    Value.List (List.map (fun l -> Value.String l) (Graph.labels g n))
  | _ -> assert false

let fn_type g = function
  | [ Value.Null ] -> Value.Null
  | [ v ] -> Value.String (Graph.rel_type g (as_rel "type" v))
  | _ -> assert false

let fn_id _g = function
  | [ Value.Null ] -> Value.Null
  | [ Value.Node n ] -> Value.Int (Ids.node_to_int n)
  | [ Value.Rel r ] -> Value.Int (Ids.rel_to_int r)
  | [ v ] ->
    Value.type_error "id: expected a node or relationship, got %s"
      (Value.type_name v)
  | _ -> assert false

let fn_start_node g = function
  | [ Value.Null ] -> Value.Null
  | [ v ] -> Value.Node (Graph.src g (as_rel "startNode" v))
  | _ -> assert false

let fn_end_node g = function
  | [ Value.Null ] -> Value.Null
  | [ v ] -> Value.Node (Graph.tgt g (as_rel "endNode" v))
  | _ -> assert false

let fn_keys g = function
  | [ Value.Null ] -> Value.Null
  | [ Value.Node n ] ->
    Value.List
      (List.map (fun (k, _) -> Value.String k)
         (Value.Smap.bindings (Graph.node_props g n)))
  | [ Value.Rel r ] ->
    Value.List
      (List.map (fun (k, _) -> Value.String k)
         (Value.Smap.bindings (Graph.rel_props g r)))
  | [ Value.Map m ] ->
    Value.List (List.map (fun (k, _) -> Value.String k) (Value.Smap.bindings m))
  | [ v ] -> Value.type_error "keys: cannot apply to %s" (Value.type_name v)
  | _ -> assert false

let fn_properties g = function
  | [ Value.Null ] -> Value.Null
  | [ Value.Node n ] -> Value.Map (Graph.node_props g n)
  | [ Value.Rel r ] -> Value.Map (Graph.rel_props g r)
  | [ (Value.Map _ as m) ] -> m
  | [ v ] -> Value.type_error "properties: cannot apply to %s" (Value.type_name v)
  | _ -> assert false

let fn_degree dir g = function
  | [ Value.Null ] -> Value.Null
  | [ v ] ->
    let n = as_node "degree" v in
    let count =
      match dir with
      | `Out -> List.length (Graph.out_rels g n)
      | `In -> List.length (Graph.in_rels g n)
      | `Both -> Graph.degree g n
    in
    Value.Int count
  | _ -> assert false

(* --- path functions ------------------------------------------------- *)

let fn_nodes _g = function
  | [ Value.Null ] -> Value.Null
  | [ Value.Path p ] ->
    Value.List (List.map (fun n -> Value.Node n) (Value.path_nodes p))
  | [ v ] -> Value.type_error "nodes: expected a path, got %s" (Value.type_name v)
  | _ -> assert false

let fn_relationships _g = function
  | [ Value.Null ] -> Value.Null
  | [ Value.Path p ] ->
    Value.List (List.map (fun r -> Value.Rel r) (Value.path_rels p))
  | [ v ] ->
    Value.type_error "relationships: expected a path, got %s" (Value.type_name v)
  | _ -> assert false

let fn_length _g = function
  | [ Value.Null ] -> Value.Null
  | [ Value.Path p ] -> Value.Int (Value.path_length p)
  | [ Value.List l ] -> Value.Int (List.length l)
  | [ Value.String s ] -> Value.Int (String.length s)
  | [ v ] -> Value.type_error "length: cannot apply to %s" (Value.type_name v)
  | _ -> assert false

(* --- list functions -------------------------------------------------- *)

let fn_head _g = function
  | [ Value.Null ] -> Value.Null
  | [ Value.List [] ] -> Value.Null
  | [ Value.List (x :: _) ] -> x
  | [ v ] -> Value.type_error "head: expected a list, got %s" (Value.type_name v)
  | _ -> assert false

let fn_last _g = function
  | [ Value.Null ] -> Value.Null
  | [ Value.List [] ] -> Value.Null
  | [ Value.List l ] -> List.nth l (List.length l - 1)
  | [ v ] -> Value.type_error "last: expected a list, got %s" (Value.type_name v)
  | _ -> assert false

let fn_tail _g = function
  | [ Value.Null ] -> Value.Null
  | [ Value.List [] ] -> Value.List []
  | [ Value.List (_ :: t) ] -> Value.List t
  | [ v ] -> Value.type_error "tail: expected a list, got %s" (Value.type_name v)
  | _ -> assert false

let fn_reverse _g = function
  | [ Value.Null ] -> Value.Null
  | [ Value.List l ] -> Value.List (List.rev l)
  | [ Value.String s ] ->
    Value.String (String.init (String.length s) (fun i ->
        s.[String.length s - 1 - i]))
  | [ v ] -> Value.type_error "reverse: cannot apply to %s" (Value.type_name v)
  | _ -> assert false

let fn_range _g args =
  match args with
  | [ lo; hi ] -> Ops.range lo hi (Value.Int 1)
  | [ lo; hi; step ] -> Ops.range lo hi step
  | _ -> eval_error "range expects 2 or 3 arguments"

let fn_size _g = function [ v ] -> Ops.size v | _ -> assert false

(* --- scalar / conversion functions ----------------------------------- *)

let fn_coalesce _g args =
  match List.find_opt (fun v -> not (Value.is_null v)) args with
  | Some v -> v
  | None -> Value.Null

let fn_to_integer =
  (* [int_of_float] is unspecified for NaN, ±infinity and floats beyond
     the 63-bit native range (toInteger(1e300) would return whatever the
     hardware truncation produced), so those raise a runtime error. *)
  let of_float f =
    if Ops.float_fits_int f then Value.Int (int_of_float f)
    else eval_error "toInteger: cannot represent %g as an integer" f
  in
  null_prop1 (function
    | Value.Int i -> Value.Int i
    | Value.Float f -> of_float f
    | Value.String s -> (
      match int_of_string_opt (String.trim s) with
      | Some i -> Value.Int i
      | None -> (
        match float_of_string_opt (String.trim s) with
        | Some f -> of_float f
        | None -> Value.Null))
    | v -> Value.type_error "toInteger: cannot convert %s" (Value.type_name v))

let fn_to_float =
  null_prop1 (function
    | Value.Int i -> Value.Float (float_of_int i)
    | Value.Float f -> Value.Float f
    | Value.String s -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> Value.Float f
      | None -> Value.Null)
    | v -> Value.type_error "toFloat: cannot convert %s" (Value.type_name v))

let fn_to_boolean =
  null_prop1 (function
    | Value.Bool b -> Value.Bool b
    | Value.String s -> (
      match String.lowercase_ascii (String.trim s) with
      | "true" -> Value.Bool true
      | "false" -> Value.Bool false
      | _ -> Value.Null)
    | v -> Value.type_error "toBoolean: cannot convert %s" (Value.type_name v))

let fn_to_string =
  null_prop1 (function
    | Value.String s -> Value.String s
    | v -> Value.String (Format.asprintf "%a" Value.pp_plain v))

let fn_abs =
  null_prop1 (function
    | Value.Int i -> Value.Int (abs i)
    | Value.Float f -> Value.Float (Float.abs f)
    | v -> Value.type_error "abs: expected a number, got %s" (Value.type_name v))

let fn_sign =
  null_prop1 (function
    | Value.Int i -> Value.Int (compare i 0)
    | Value.Float f -> Value.Int (compare f 0.)
    | v -> Value.type_error "sign: expected a number, got %s" (Value.type_name v))

let fn_round = float1 "round" Float.round
let fn_ceil = float1 "ceil" Float.ceil
let fn_floor = float1 "floor" Float.floor
let fn_sqrt = float1 "sqrt" Float.sqrt
let fn_exp = float1 "exp" Float.exp
let fn_log = float1 "log" Float.log
let fn_log10 = float1 "log10" Float.log10
let fn_sin = float1 "sin" Float.sin
let fn_cos = float1 "cos" Float.cos
let fn_tan = float1 "tan" Float.tan
let fn_asin = float1 "asin" Float.asin
let fn_acos = float1 "acos" Float.acos
let fn_atan = float1 "atan" Float.atan
let fn_degrees = float1 "degrees" (fun x -> x *. 180. /. Float.pi)
let fn_radians = float1 "radians" (fun x -> x *. Float.pi /. 180.)

let fn_atan2 _g = function
  | [ Value.Null; _ ] | [ _; Value.Null ] -> Value.Null
  | [ y; x ] -> Value.Float (Float.atan2 (Ops.to_float y) (Ops.to_float x))
  | _ -> assert false

let fn_haversin =
  float1 "haversin" (fun x ->
      let s = Float.sin (x /. 2.) in
      s *. s)

(* --- string functions ------------------------------------------------ *)

let fn_to_upper = string1 "toUpper" (fun s -> Value.String (String.uppercase_ascii s))
let fn_to_lower = string1 "toLower" (fun s -> Value.String (String.lowercase_ascii s))
let fn_trim = string1 "trim" (fun s -> Value.String (String.trim s))

let fn_ltrim =
  string1 "lTrim" (fun s ->
      let n = String.length s in
      let i = ref 0 in
      while !i < n && s.[!i] = ' ' do incr i done;
      Value.String (String.sub s !i (n - !i)))

let fn_rtrim =
  string1 "rTrim" (fun s ->
      let n = ref (String.length s) in
      while !n > 0 && s.[!n - 1] = ' ' do decr n done;
      Value.String (String.sub s 0 !n))

let fn_split _g = function
  | [ Value.Null; _ ] | [ _; Value.Null ] -> Value.Null
  | [ Value.String s; Value.String sep ] ->
    if sep = "" then Value.type_error "split: empty separator"
    else
      let parts = ref [] and start = ref 0 in
      let slen = String.length sep and n = String.length s in
      let i = ref 0 in
      while !i <= n - slen do
        if String.sub s !i slen = sep then (
          parts := String.sub s !start (!i - !start) :: !parts;
          start := !i + slen;
          i := !i + slen)
        else incr i
      done;
      parts := String.sub s !start (n - !start) :: !parts;
      Value.List (List.rev_map (fun p -> Value.String p) !parts)
  | [ a; b ] ->
    Value.type_error "split: expected strings, got %s, %s" (Value.type_name a)
      (Value.type_name b)
  | _ -> assert false

let fn_substring _g = function
  | Value.Null :: _ -> Value.Null
  | [ Value.String s; Value.Int start ] ->
    let n = String.length s in
    let start = max 0 (min n start) in
    Value.String (String.sub s start (n - start))
  | [ Value.String s; Value.Int start; Value.Int len ] ->
    let n = String.length s in
    let start = max 0 (min n start) in
    let len = max 0 (min (n - start) len) in
    Value.String (String.sub s start len)
  | _ -> Value.type_error "substring: expected (string, int[, int])"

let fn_replace _g = function
  | [ Value.Null; _; _ ] | [ _; Value.Null; _ ] | [ _; _; Value.Null ] -> Value.Null
  | [ Value.String s; Value.String from; Value.String into ] ->
    if from = "" then Value.String s
    else begin
      let buf = Buffer.create (String.length s) in
      let flen = String.length from and n = String.length s in
      let i = ref 0 in
      while !i < n do
        if !i <= n - flen && String.sub s !i flen = from then (
          Buffer.add_string buf into;
          i := !i + flen)
        else (
          Buffer.add_char buf s.[!i];
          incr i)
      done;
      Value.String (Buffer.contents buf)
    end
  | _ -> Value.type_error "replace: expected three strings"

let fn_left _g = function
  | [ Value.Null; _ ] -> Value.Null
  | [ Value.String s; Value.Int n ] ->
    Value.String (String.sub s 0 (max 0 (min n (String.length s))))
  | _ -> Value.type_error "left: expected (string, int)"

let fn_right _g = function
  | [ Value.Null; _ ] -> Value.Null
  | [ Value.String s; Value.Int n ] ->
    let len = String.length s in
    let n = max 0 (min n len) in
    Value.String (String.sub s (len - n) n)
  | _ -> Value.type_error "right: expected (string, int)"

(* --- registration ----------------------------------------------------- *)

let () =
  register "labels" (arity "labels" 1 fn_labels);
  register "type" (arity "type" 1 fn_type);
  register "id" (arity "id" 1 fn_id);
  register "startnode" (arity "startNode" 1 fn_start_node);
  register "endnode" (arity "endNode" 1 fn_end_node);
  register "keys" (arity "keys" 1 fn_keys);
  register "properties" (arity "properties" 1 fn_properties);
  register "outdegree" (arity "outDegree" 1 (fn_degree `Out));
  register "indegree" (arity "inDegree" 1 (fn_degree `In));
  register "degree" (arity "degree" 1 (fn_degree `Both));
  register "nodes" (arity "nodes" 1 fn_nodes);
  register "relationships" (arity "relationships" 1 fn_relationships);
  register "rels" (arity "rels" 1 fn_relationships);
  register "length" (arity "length" 1 fn_length);
  register "size" (arity "size" 1 fn_size);
  register "head" (arity "head" 1 fn_head);
  register "last" (arity "last" 1 fn_last);
  register "tail" (arity "tail" 1 fn_tail);
  register "reverse" (arity "reverse" 1 fn_reverse);
  register "range" fn_range;
  register "coalesce" fn_coalesce;
  register "tointeger" (arity "toInteger" 1 fn_to_integer);
  register "tofloat" (arity "toFloat" 1 fn_to_float);
  register "toboolean" (arity "toBoolean" 1 fn_to_boolean);
  register "tostring" (arity "toString" 1 fn_to_string);
  register "abs" (arity "abs" 1 fn_abs);
  register "sign" (arity "sign" 1 fn_sign);
  register "round" (arity "round" 1 fn_round);
  register "ceil" (arity "ceil" 1 fn_ceil);
  register "floor" (arity "floor" 1 fn_floor);
  register "sqrt" (arity "sqrt" 1 fn_sqrt);
  register "exp" (arity "exp" 1 fn_exp);
  register "log" (arity "log" 1 fn_log);
  register "log10" (arity "log10" 1 fn_log10);
  register "sin" (arity "sin" 1 fn_sin);
  register "cos" (arity "cos" 1 fn_cos);
  register "tan" (arity "tan" 1 fn_tan);
  register "pi" (arity "pi" 0 (fun _ _ -> Value.Float Float.pi));
  register "e" (arity "e" 0 (fun _ _ -> Value.Float (Float.exp 1.)));
  register "asin" (arity "asin" 1 fn_asin);
  register "acos" (arity "acos" 1 fn_acos);
  register "atan" (arity "atan" 1 fn_atan);
  register "atan2" (arity "atan2" 2 fn_atan2);
  register "degrees" (arity "degrees" 1 fn_degrees);
  register "radians" (arity "radians" 1 fn_radians);
  register "haversin" (arity "haversin" 1 fn_haversin);
  register "toupper" (arity "toUpper" 1 fn_to_upper);
  register "tolower" (arity "toLower" 1 fn_to_lower);
  register "upper" (arity "upper" 1 fn_to_upper);
  register "lower" (arity "lower" 1 fn_to_lower);
  register "trim" (arity "trim" 1 fn_trim);
  register "ltrim" (arity "lTrim" 1 fn_ltrim);
  register "rtrim" (arity "rTrim" 1 fn_rtrim);
  register "split" (arity "split" 2 fn_split);
  register "substring" fn_substring;
  register "replace" (arity "replace" 3 fn_replace);
  register "left" (arity "left" 2 fn_left);
  register "right" (arity "right" 2 fn_right)
