(** Aggregation: the evaluation of aggregating expressions in RETURN and
    WITH items (paper, Section 3).

    A projection item that contains an aggregate is evaluated in two
    stages: the aggregate subterms are lifted out ({!extract_aggregates}),
    computed over the rows of the group ({!compute}), and the remaining
    expression is evaluated with the results bound to synthetic
    variables.  The non-aggregating items act as the implicit grouping
    key. *)

open Cypher_values
open Cypher_graph
open Cypher_table
open Cypher_ast

type spec =
  [ `Count_star  (** count( * ) — counts rows, including nulls *)
  | `Agg of Ast.agg_fn * bool * Ast.expr  (** function, DISTINCT, argument *)
  | `Percentile of bool * bool * Ast.expr * Ast.expr
    (** continuous?, DISTINCT, value expression, percentile expression *)
  ]

val contains_aggregate : Ast.expr -> bool

val extract_aggregates : Ast.expr -> Ast.expr * (string * spec) list
(** Replaces every aggregate subterm with a fresh synthetic variable
    (named [#agg1], [#agg2], ...) and returns the rewritten expression
    together with the extracted specs. *)

val compute :
  Config.t -> Graph.t -> Record.t list -> spec -> Value.t
(** Computes one aggregate over the rows of a group.  Null arguments are
    skipped (except for [count( * )]); DISTINCT deduplicates the argument
    multiset; [sum] of no values is 0, [avg]/[min]/[max] of no values is
    null; [collect] of no values is the empty list. *)

(** {2 Split evaluation}

    [compute] is [finalize] over [arg_values].  The parallel executor
    evaluates {!arg_values} per morsel on worker domains, concatenates
    the per-morsel lists in morsel order (which reproduces the
    sequential row order exactly, so non-associative float folds agree
    bitwise), and calls {!finalize} once per group. *)

val arg_values : Config.t -> Graph.t -> Record.t list -> spec -> Value.t list
(** The aggregate's argument evaluated per row, nulls dropped, in row
    order, before any DISTINCT dedup.  Empty for [`Count_star]. *)

val finalize :
  Config.t ->
  Graph.t ->
  first_row:Record.t option ->
  row_count:int ->
  Value.t list ->
  spec ->
  Value.t
(** Folds pre-evaluated argument values to the aggregate's result.
    [first_row] is the group's first input row (percentile evaluates its
    percentile expression against it); [row_count] is the group's total
    row count (what [count( * )] reports). *)
