open Cypher_values
open Cypher_graph
open Cypher_table
open Cypher_ast
open Ast

exception Eval_error = Functions.Eval_error

let eval_error = Functions.eval_error

(* Force the temporal constructors into F whenever the evaluator links. *)
let () = Temporal_functions.ensure ()

let value_of_ternary = function
  | Ternary.True -> Value.Bool true
  | Ternary.False -> Value.Bool false
  | Ternary.Unknown -> Value.Null

(* ------------------------------------------------------------------ *)
(* Expressions: [[expr]]_{G,u}  (Section 4.3)                          *)
(* ------------------------------------------------------------------ *)

let rec eval_expr cfg g u expr =
  match expr with
  | E_lit l -> Ast.value_of_literal l
  | E_var a -> (
    match Record.find u a with
    | Some v -> v
    | None -> eval_error "unbound variable: %s" a)
  | E_param p -> (
    match Value.Smap.find_opt p cfg.Config.params with
    | Some v -> v
    | None -> eval_error "missing parameter: $%s" p)
  | E_prop (e, k) -> eval_prop_access cfg g u e k
  | E_map kvs ->
    Value.map_of_list (List.map (fun (k, e) -> (k, eval_expr cfg g u e)) kvs)
  | E_list es -> Value.List (List.map (eval_expr cfg g u) es)
  | E_in (e1, e2) ->
    value_of_ternary (Ops.in_list (eval_expr cfg g u e1) (eval_expr cfg g u e2))
  | E_index (e1, e2) -> Ops.index (eval_expr cfg g u e1) (eval_expr cfg g u e2)
  | E_slice (e, lo, hi) ->
    Ops.slice (eval_expr cfg g u e)
      (Option.map (eval_expr cfg g u) lo)
      (Option.map (eval_expr cfg g u) hi)
  | E_starts_with (e1, e2) ->
    value_of_ternary
      (Ops.starts_with (eval_expr cfg g u e1) (eval_expr cfg g u e2))
  | E_ends_with (e1, e2) ->
    value_of_ternary (Ops.ends_with (eval_expr cfg g u e1) (eval_expr cfg g u e2))
  | E_contains (e1, e2) ->
    value_of_ternary (Ops.contains (eval_expr cfg g u e1) (eval_expr cfg g u e2))
  | E_regex_match (e1, e2) -> (
    match eval_expr cfg g u e1, eval_expr cfg g u e2 with
    | Value.Null, _ | _, Value.Null -> Value.Null
    | Value.String s, Value.String pat -> (
      (* whole-string match, PCRE dialect, as in Cypher *)
      match Re.Pcre.re ("^(?:" ^ pat ^ ")$") with
      | re -> Value.Bool (Re.execp (Re.compile re) s)
      | exception _ -> eval_error "invalid regular expression: %s" pat)
    | a, b ->
      Value.type_error "=~: expected strings, got %s and %s"
        (Value.type_name a) (Value.type_name b))
  | E_or (e1, e2) ->
    value_of_ternary
      (Ternary.or_ (eval_truth cfg g u e1) (eval_truth cfg g u e2))
  | E_and (e1, e2) ->
    value_of_ternary
      (Ternary.and_ (eval_truth cfg g u e1) (eval_truth cfg g u e2))
  | E_xor (e1, e2) ->
    value_of_ternary
      (Ternary.xor (eval_truth cfg g u e1) (eval_truth cfg g u e2))
  | E_not e -> value_of_ternary (Ternary.not_ (eval_truth cfg g u e))
  | E_is_null e -> Value.Bool (Value.is_null (eval_expr cfg g u e))
  | E_is_not_null e -> Value.Bool (not (Value.is_null (eval_expr cfg g u e)))
  | E_cmp (op, e1, e2) ->
    let v1 = eval_expr cfg g u e1 and v2 = eval_expr cfg g u e2 in
    value_of_ternary
      (match op with
      | Eq -> Value.equal_ternary v1 v2
      | Neq -> Ternary.not_ (Value.equal_ternary v1 v2)
      | Lt -> Value.less_than v1 v2
      | Le -> Value.less_eq v1 v2
      | Gt -> Value.greater_than v1 v2
      | Ge -> Value.greater_eq v1 v2)
  | E_arith (op, e1, e2) -> (
    let v1 = eval_expr cfg g u e1 and v2 = eval_expr cfg g u e2 in
    match v1, v2 with
    | Value.Temporal t1, Value.Temporal t2 -> (
      match op with
      | Add -> Cypher_temporal.Temporal.add t1 t2
      | Sub -> Cypher_temporal.Temporal.sub t1 t2
      | _ -> Value.type_error "unsupported temporal arithmetic")
    | Value.Temporal t, (Value.Int _ | Value.Float _) when op = Mul ->
      Cypher_temporal.Temporal.scale t (Ops.to_float v2)
    | (Value.Int _ | Value.Float _), Value.Temporal t when op = Mul ->
      Cypher_temporal.Temporal.scale t (Ops.to_float v1)
    | _ -> (
      match op with
      | Add -> Ops.add v1 v2
      | Sub -> Ops.sub v1 v2
      | Mul -> Ops.mul v1 v2
      | Div -> Ops.div v1 v2
      | Mod -> Ops.modulo v1 v2
      | Pow -> Ops.pow v1 v2))
  | E_neg e -> Ops.neg (eval_expr cfg g u e)
  | E_fn (name, args) -> eval_fn cfg g u name args
  | E_count_star | E_agg _ | E_agg_percentile _ ->
    eval_error "aggregation is only allowed in RETURN and WITH items"
  | E_has_labels (e, labels) -> (
    match eval_expr cfg g u e with
    | Value.Null -> Value.Null
    | Value.Node n ->
      Value.Bool (List.for_all (fun l -> Graph.has_label g n l) labels)
    | v ->
      Value.type_error "label predicate: expected a node, got %s"
        (Value.type_name v))
  | E_case { case_subject; case_branches; case_default } -> (
    let matches (w, _) =
      match case_subject with
      | Some s ->
        Ternary.is_true
          (Value.equal_ternary (eval_expr cfg g u s) (eval_expr cfg g u w))
      | None -> Ternary.is_true (eval_truth cfg g u w)
    in
    match List.find_opt matches case_branches with
    | Some (_, t) -> eval_expr cfg g u t
    | None -> (
      match case_default with
      | Some d -> eval_expr cfg g u d
      | None -> Value.Null))
  | E_list_comp { lc_var; lc_source; lc_where; lc_body } -> (
    match eval_expr cfg g u lc_source with
    | Value.Null -> Value.Null
    | Value.List elems ->
      let keep v =
        match lc_where with
        | None -> true
        | Some w -> Ternary.is_true (eval_truth cfg g (Record.add u lc_var v) w)
      in
      let body v =
        match lc_body with
        | None -> v
        | Some b -> eval_expr cfg g (Record.add u lc_var v) b
      in
      Value.List (List.map body (List.filter keep elems))
    | v ->
      Value.type_error "list comprehension: expected a list, got %s"
        (Value.type_name v))
  | E_map_projection (e, items) -> (
    match eval_expr cfg g u e with
    | Value.Null -> Value.Null
    | subject ->
      let props_of () =
        match subject with
        | Value.Node n -> Graph.node_props g n
        | Value.Rel r -> Graph.rel_props g r
        | Value.Map m -> m
        | v ->
          Value.type_error
            "map projection: expected a node, relationship or map, got %s"
            (Value.type_name v)
      in
      let prop k =
        match subject with
        | Value.Node n -> Graph.node_prop g n k
        | Value.Rel r -> Graph.rel_prop g r k
        | Value.Map m -> (
          match Value.Smap.find_opt k m with Some v -> v | None -> Value.Null)
        | v ->
          Value.type_error
            "map projection: expected a node, relationship or map, got %s"
            (Value.type_name v)
      in
      Value.Map
        (List.fold_left
           (fun acc item ->
             match item with
             | Mp_property k -> Value.Smap.add k (prop k) acc
             | Mp_all_properties ->
               Value.Smap.union (fun _ _ v -> Some v) acc (props_of ())
             | Mp_literal (k, e) -> Value.Smap.add k (eval_expr cfg g u e) acc
             | Mp_variable v -> Value.Smap.add v (eval_expr cfg g u (E_var v)) acc)
           Value.Smap.empty items))
  | E_pattern_pred p | E_exists_pattern p ->
    Value.Bool (match_pattern_tuple cfg g u [ p ] <> [])
  | E_reduce { rd_acc; rd_init; rd_var; rd_list; rd_body } -> (
    match eval_expr cfg g u rd_list with
    | Value.Null -> Value.Null
    | Value.List elems ->
      List.fold_left
        (fun acc v ->
          eval_expr cfg g
            (Record.add (Record.add u rd_acc acc) rd_var v)
            rd_body)
        (eval_expr cfg g u rd_init)
        elems
    | v -> Value.type_error "reduce: expected a list, got %s" (Value.type_name v))
  | E_pattern_comp { pc_pattern; pc_where; pc_body } ->
    (* one body value per match of the pattern under the current
       assignment, in match order *)
    let matches = match_pattern_tuple cfg g u [ pc_pattern ] in
    let envs = List.map (fun u' -> Record.overlay u u') matches in
    let envs =
      match pc_where with
      | None -> envs
      | Some w ->
        List.filter (fun env -> Ternary.is_true (eval_truth cfg g env w)) envs
    in
    Value.List (List.map (fun env -> eval_expr cfg g env pc_body) envs)
  | E_quantified (q, x, src, pred) -> (
    match eval_expr cfg g u src with
    | Value.Null -> Value.Null
    | Value.List elems ->
      let truths =
        List.map (fun v -> eval_truth cfg g (Record.add u x v) pred) elems
      in
      let count t = List.length (List.filter (Ternary.equal t) truths) in
      let trues = count Ternary.True
      and falses = count Ternary.False
      and unknowns = count Ternary.Unknown in
      value_of_ternary
        (match q with
        | Q_all ->
          if falses > 0 then Ternary.False
          else if unknowns > 0 then Ternary.Unknown
          else Ternary.True
        | Q_any ->
          if trues > 0 then Ternary.True
          else if unknowns > 0 then Ternary.Unknown
          else Ternary.False
        | Q_none ->
          if trues > 0 then Ternary.False
          else if unknowns > 0 then Ternary.Unknown
          else Ternary.True
        | Q_single ->
          if trues > 1 then Ternary.False
          else if unknowns > 0 then Ternary.Unknown
          else if trues = 1 then Ternary.True
          else Ternary.False)
    | v ->
      Value.type_error "quantifier: expected a list, got %s" (Value.type_name v))

and eval_prop_access cfg g u e k =
  match eval_expr cfg g u e with
  | Value.Null -> Value.Null
  | Value.Node n -> Graph.node_prop g n k
  | Value.Rel r -> Graph.rel_prop g r k
  | Value.Map m -> (
    match Value.Smap.find_opt k m with Some v -> v | None -> Value.Null)
  | Value.Temporal t -> (
    match Cypher_temporal.Temporal.component t k with
    | Some v -> v
    | None -> Value.type_error "unknown temporal component: %s" k)
  | v ->
    Value.type_error "property access .%s: expected a node, relationship or map, got %s"
      k (Value.type_name v)

and eval_fn cfg g u name args =
  (* exists(n.prop) tests whether ι is defined on (n, prop): it must see
     the expression, not its value, because a missing property already
     evaluates to null. *)
  match String.lowercase_ascii name, args with
  | "exists", [ E_prop (e, k) ] -> (
    match eval_expr cfg g u e with
    | Value.Null -> Value.Null
    | Value.Node n -> Value.Bool (Value.Smap.mem k (Graph.node_props g n))
    | Value.Rel r -> Value.Bool (Value.Smap.mem k (Graph.rel_props g r))
    | Value.Map m -> Value.Bool (Value.Smap.mem k m)
    | v -> Value.type_error "exists: cannot apply to %s" (Value.type_name v))
  | "exists", [ e ] -> Value.Bool (not (Value.is_null (eval_expr cfg g u e)))
  (* size((a)-->(b)) counts the matches of the pattern (Neo4j 3.x
     behaviour); it must see the pattern, whose generic evaluation is a
     boolean. *)
  | ("size" | "length"), [ (E_pattern_pred p | E_exists_pattern p) ] ->
    Value.Int (List.length (match_pattern_tuple cfg g u [ p ]))
  | _ -> Functions.apply g name (List.map (eval_expr cfg g u) args)

and eval_truth cfg g u e =
  match eval_expr cfg g u e with
  | Value.Bool b -> Ternary.of_bool b
  | Value.Null -> Ternary.Unknown
  | v ->
    Value.type_error "expected a boolean predicate, got %s" (Value.type_name v)

(* ------------------------------------------------------------------ *)
(* Pattern matching: match(π̄, G, u)  (Section 4.2)                     *)
(* ------------------------------------------------------------------ *)

and match_pattern_tuple cfg g u patterns =
  let results = ref [] in
  let free = Ast.free_pattern_tuple patterns in
  let new_names = List.filter (fun a -> not (Record.mem u a)) free in
  let cap =
    match cfg.Config.var_length_cap with
    | Some c -> c
    | None -> Graph.rel_count g
  in
  let track_nodes = cfg.Config.morphism = Config.Node_isomorphism in
  let track_rels = cfg.Config.morphism <> Config.Homomorphism in
  (* state passed along the search *)
  let module S = struct
    type t = {
      bnd : Record.t;
      used_rels : Ids.Rel_set.t;
      used_nodes : Ids.Node_set.t;
      deferred : (Record.t -> bool) list;
    }
  end in
  let open S in
  let init =
    {
      bnd = u;
      used_rels = Ids.Rel_set.empty;
      used_nodes = Ids.Node_set.empty;
      deferred = [];
    }
  in
  (* Evaluates a pattern property constraint; if evaluation fails because
     a variable is bound later in the pattern, defer the check. *)
  let check_prop st mk_actual (_k, e) kont =
    match eval_expr cfg g st.bnd e with
    | expected ->
      if Ternary.is_true (Value.equal_ternary (mk_actual ()) expected) then
        kont st
    | exception Eval_error _ ->
      let check bnd =
        Ternary.is_true
          (Value.equal_ternary (mk_actual ()) (eval_expr cfg g bnd e))
      in
      kont { st with deferred = check :: st.deferred }
  in
  let rec check_props st mk_actual props kont =
    match props with
    | [] -> kont st
    | p :: rest -> check_prop st (mk_actual p) p (fun st -> check_props st mk_actual rest kont)
  in
  let check_node_props st n props kont =
    check_props st (fun (k, _) () -> Graph.node_prop g n k) props kont
  in
  let check_rel_props st r props kont =
    check_props st (fun (k, _) () -> Graph.rel_prop g r k) props kont
  in
  (* Binds [name] to [v] in [st], or checks consistency if already bound. *)
  let bind st name v kont =
    match name with
    | None -> kont st
    | Some a -> (
      match Record.find st.bnd a with
      | Some v0 -> if Value.equal_total v0 v then kont st
      | None -> kont { st with bnd = Record.add st.bnd a v })
  in
  (* (n, G, u) |= χ, extending the assignment.  Under node isomorphism a
     node already visited is only acceptable when the pattern refers to
     it through the same, already-bound variable. *)
  let match_node st n (np : node_pattern) kont =
    let already_this_node =
      match np.np_name with
      | Some a -> (
        match Record.find st.bnd a with
        | Some (Value.Node n0) -> Ids.equal_node n0 n
        | Some _ -> false
        | None -> false)
      | None -> false
    in
    let node_iso_ok =
      (not track_nodes) || already_this_node
      || not (Ids.Node_set.mem n st.used_nodes)
    in
    if node_iso_ok && List.for_all (fun l -> Graph.has_label g n l) np.np_labels
    then
      let st =
        if track_nodes then
          { st with used_nodes = Ids.Node_set.add n st.used_nodes }
        else st
      in
      bind st np.np_name (Value.Node n) (fun st ->
          check_node_props st n np.np_props kont)
  in
  (* Adjacency of [cur] in the direction of [rp]. *)
  let hop_candidates (rp : rel_pattern) cur =
    match rp.rp_dir with
    | Left_to_right ->
      List.map (fun r -> (r, Graph.tgt g r)) (Graph.out_rels g cur)
    | Right_to_left ->
      List.map (fun r -> (r, Graph.src g r)) (Graph.in_rels g cur)
    | Undirected ->
      List.map (fun r -> (r, Graph.other_end g r cur)) (Graph.all_rels_of g cur)
  in
  (* Enumerates matches of one relationship hop (ρ, χ_next) starting at
     [node]; calls [kont st steps] for every way, where [steps] is the
     list of (rel, node) steps taken (empty for a zero-length match). *)
  let match_hop_regex st node (rp : rel_pattern) (np_next : node_pattern) kont =
    match rp.rp_regex with
    | Some re ->
      (* RPQ hop: subset-simulate the type NFA along rel-unique walks;
         the walk may end whenever the state set is accepting.  The same
         automaton drives the planner's product-graph operator. *)
      let nfa = Type_regex.compile re in
      let bind_rel_var st rels_rev kont =
        bind st rp.rp_name
          (Value.List (List.rev_map (fun r -> Value.Rel r) rels_rev))
          kont
      in
      let rec rseg st cur states depth rels_rev steps_rev =
        if Type_regex.accepting nfa states then
          bind_rel_var st rels_rev (fun st ->
              match_node st cur np_next (fun st -> kont st (List.rev steps_rev)));
        if depth < cap then begin
          let st_opt =
            if track_nodes && depth >= 1 then
              if Ids.Node_set.mem cur st.used_nodes then None
              else Some { st with used_nodes = Ids.Node_set.add cur st.used_nodes }
            else Some st
          in
          match st_opt with
          | None -> ()
          | Some st ->
            List.iter
              (fun (r, next) ->
                let rel_ok =
                  (not track_rels) || not (Ids.Rel_set.mem r st.used_rels)
                in
                if rel_ok then begin
                  let states' = Type_regex.step nfa states (Graph.rel_type g r) in
                  if not (Type_regex.is_empty states') then
                    check_rel_props st r rp.rp_props (fun st ->
                        let st =
                          if track_rels then
                            { st with used_rels = Ids.Rel_set.add r st.used_rels }
                          else st
                        in
                        rseg st next states' (depth + 1) (r :: rels_rev)
                          ((r, next) :: steps_rev))
                end)
              (hop_candidates rp cur)
        end
      in
      rseg st node (Type_regex.start nfa) 0 [] []
    | None -> assert false
  in
  let match_hop st node (rp : rel_pattern) (np_next : node_pattern) kont =
    if rp.rp_regex <> None then match_hop_regex st node rp np_next kont
    else begin
    let kmin, kmax_opt = Ast.range_of_len rp.rp_len in
    let kmax = match kmax_opt with Some n -> n | None -> cap in
    let bind_rel_var st rels_rev kont =
      let v =
        match rp.rp_len with
        | None -> (
          match rels_rev with
          | [ r ] -> Value.Rel r
          | _ -> assert false)
        | Some _ -> Value.List (List.rev_map (fun r -> Value.Rel r) rels_rev)
      in
      bind st rp.rp_name v kont
    in
    let rec seg st cur depth rels_rev steps_rev =
      (* end the segment here: [cur] becomes the node of χ_next *)
      if depth >= kmin then
        bind_rel_var st rels_rev (fun st ->
            match_node st cur np_next (fun st -> kont st (List.rev steps_rev)));
      (* or extend it: [cur] becomes an intermediate node of the
         variable-length segment *)
      if depth < kmax then begin
        let st_opt =
          if track_nodes && depth >= 1 then
            if Ids.Node_set.mem cur st.used_nodes then None
            else Some { st with used_nodes = Ids.Node_set.add cur st.used_nodes }
          else Some st
        in
        match st_opt with
        | None -> ()
        | Some st ->
          let candidates =
            match rp.rp_dir with
            | Left_to_right ->
              List.map (fun r -> (r, Graph.tgt g r)) (Graph.out_rels g cur)
            | Right_to_left ->
              List.map (fun r -> (r, Graph.src g r)) (Graph.in_rels g cur)
            | Undirected ->
              List.map
                (fun r -> (r, Graph.other_end g r cur))
                (Graph.all_rels_of g cur)
          in
          List.iter
            (fun (r, next) ->
              let rel_ok =
                (not track_rels) || not (Ids.Rel_set.mem r st.used_rels)
              in
              let type_ok =
                rp.rp_types = [] || List.mem (Graph.rel_type g r) rp.rp_types
              in
              if rel_ok && type_ok then
                check_rel_props st r rp.rp_props (fun st ->
                    let st =
                      if track_rels then
                        { st with used_rels = Ids.Rel_set.add r st.used_rels }
                      else st
                    in
                    seg st next (depth + 1) (r :: rels_rev)
                      ((r, next) :: steps_rev)))
            candidates
      end
    in
    seg st node 0 [] []
    end
  in
  let candidates_of st (np : node_pattern) =
    match np.np_name with
    | Some a when Record.mem st.bnd a -> (
      match Record.find st.bnd a with
      | Some (Value.Node n) when Graph.mem_node g n -> [ n ]
      | _ -> [])
    | _ -> (
      match np.np_labels with
      | l :: _ -> Graph.nodes_with_label g l
      | [] -> Graph.nodes g)
  in
  (* Whether the steps of a completed path, starting at [start], satisfy
     the GQL path restrictor.  WALK imposes nothing; TRAIL forbids
     repeated relationships; ACYCLIC forbids repeated nodes. *)
  let restr_ok restr start steps =
    match restr with
    | Walk -> true
    | Trail ->
      let rec dup seen = function
        | [] -> false
        | (r, _) :: rest ->
          Ids.Rel_set.mem r seen || dup (Ids.Rel_set.add r seen) rest
      in
      not (dup Ids.Rel_set.empty steps)
    | Acyclic ->
      let rec dup seen = function
        | [] -> false
        | (_, n) :: rest ->
          Ids.Node_set.mem n seen || dup (Ids.Node_set.add n seen) rest
      in
      not (dup (Ids.Node_set.singleton start) steps)
  in
  (* The filtered adjacency used by every path search: direction, type
     filter, relationship uniqueness against the rest of the tuple, and
     relationship property predicates.  A predicate that cannot evaluate
     (it references a variable the pattern never binds) is a typed error:
     silently dropping every edge would turn a user mistake into an
     empty result. *)
  let search_neighbours st (rp : rel_pattern) cur acc_fn =
    let cands =
      match rp.rp_dir with
      | Left_to_right ->
        List.map (fun r -> (r, Graph.tgt g r)) (Graph.out_rels g cur)
      | Right_to_left ->
        List.map (fun r -> (r, Graph.src g r)) (Graph.in_rels g cur)
      | Undirected ->
        List.map (fun r -> (r, Graph.other_end g r cur)) (Graph.all_rels_of g cur)
    in
    List.filter
      (fun (r, _) ->
        (rp.rp_types = [] || List.mem (Graph.rel_type g r) rp.rp_types)
        && (not track_rels || not (Ids.Rel_set.mem r st.used_rels))
        && List.for_all
             (fun (k, e) ->
               match eval_expr cfg g st.bnd e with
               | expected ->
                 Ternary.is_true
                   (Value.equal_ternary (Graph.rel_prop g r k) expected)
               | exception Eval_error _ ->
                 eval_error
                   "shortest-path relationship predicate on '%s' references \
                    an unbound variable"
                   k)
             rp.rp_props)
      cands
    |> acc_fn
  in
  (* Exhaustive iterative deepening: enumerate the rel-unique walks from
     [s] to [e] of the smallest length in [kmin, kmax] that has any.
     Used where per-node visited marking is unsound — the cyclic case
     s = e, and kmin > 1 where the minimal valid walk may revisit a node
     seen at an earlier BFS level. *)
  let deepening_steps st rp s e kmin kmax ~all =
    let found = ref [] in
    let l = ref (max 1 kmin) in
    while !found = [] && !l <= kmax do
      let target_len = !l in
      let rec dfs used cur depth steps_rev =
        if depth = target_len then begin
          if Ids.equal_node cur e then found := List.rev steps_rev :: !found
        end
        else
          search_neighbours st rp cur (fun cands ->
              List.iter
                (fun (r, next) ->
                  if not (Ids.Rel_set.mem r used) then
                    dfs (Ids.Rel_set.add r used) next (depth + 1)
                      ((r, next) :: steps_rev))
                cands)
      in
      dfs Ids.Rel_set.empty s 0 [];
      incr l
    done;
    match !found, all with
    | [], _ -> []
    | paths, true -> List.rev paths
    | p :: _, false -> [ p ]
  in
  (* Shortest paths between two fixed nodes: breadth-first search that
     respects the relationship pattern.  Returns the step lists of the
     minimal-length paths (one for [Shortest], all for [All_shortest]).
     For kmin <= 1, minimal walks never repeat a node (a repetition could
     be cut, contradicting minimality), so node-marking BFS is sound;
     the cyclic case s = e and kmin > 1 fall back to iterative
     deepening. *)
  let shortest_steps st (rp : rel_pattern) s e ~all =
    let kmin, kmax_opt = Ast.range_of_len rp.rp_len in
    let kmax = match kmax_opt with Some n -> n | None -> cap in
    if Ids.equal_node s e then begin
      (* shortest cycle through s: iterative deepening over path lengths *)
      if kmin = 0 then [ [] ] else deepening_steps st rp s e kmin kmax ~all
    end
    else if kmin > 1 then deepening_steps st rp s e kmin kmax ~all
    else begin
      (* level-synchronised BFS; within a level several paths may reach
         the same node (needed for All_shortest) *)
      let visited = ref (Ids.Node_set.singleton s) in
      let rec level depth frontier =
        if depth >= kmax || frontier = [] then []
        else begin
          let expansions =
            List.concat_map
              (fun (cur, steps_rev) ->
                search_neighbours st rp cur (fun cands ->
                    List.filter_map
                      (fun (r, next) ->
                        if Ids.Node_set.mem next !visited then None
                        else Some (next, (r, next) :: steps_rev))
                      cands))
              frontier
          in
          let completions =
            List.filter_map
              (fun (n, steps_rev) ->
                if Ids.equal_node n e then Some (List.rev steps_rev) else None)
              expansions
          in
          if completions <> [] then
            if all then completions else [ List.hd completions ]
          else begin
            let next_frontier =
              List.filter (fun (n, _) -> not (Ids.equal_node n e)) expansions
            in
            (* mark this level visited; for Shortest one path per node is
               enough, for All_shortest keep them all *)
            List.iter
              (fun (n, _) -> visited := Ids.Node_set.add n !visited)
              next_frontier;
            let next_frontier =
              if all then next_frontier
              else
                let seen = Hashtbl.create 16 in
                List.filter
                  (fun (n, _) ->
                    let key = Ids.node_to_int n in
                    if Hashtbl.mem seen key then false
                    else (
                      Hashtbl.add seen key ();
                      true))
                  next_frontier
            in
            level (depth + 1) next_frontier
          end
        end
      in
      (* when s <> e a zero-length path never connects, so kmin = 0
         degenerates to kmin = 1 here *)
      level 0 [ (s, []) ]
    end
  in
  (* Cheapest path by Dijkstra over a numeric cost property.  The
     returned path is node-simple; equal-cost ties break by settle
     order, which is deterministic for a given adjacency order. *)
  let cheapest_steps st (rp : rel_pattern) s e prop =
    if Ids.equal_node s e then
      eval_error "cheapestPath between identical endpoints is not supported";
    let cost_of r =
      match Graph.rel_prop g r prop with
      | Value.Int i -> float_of_int i
      | Value.Float f -> f
      | Value.Null ->
        eval_error "cheapestPath: relationship has no '%s' cost property" prop
      | v ->
        Value.type_error "cheapestPath: cost property '%s' is %s, expected a number"
          prop (Value.type_name v)
    in
    let module Pq = Set.Make (struct
      type t = float * int * Ids.node

      let compare (c1, i1, _) (c2, i2, _) =
        match Float.compare c1 c2 with 0 -> Int.compare i1 i2 | c -> c
    end) in
    let dist = Hashtbl.create 64 in
    let parent = Hashtbl.create 64 in
    let settled = Hashtbl.create 64 in
    let counter = ref 0 in
    let pq = ref Pq.empty in
    let push c n =
      incr counter;
      pq := Pq.add (c, !counter, n) !pq
    in
    Hashtbl.replace dist (Ids.node_to_int s) 0.0;
    push 0.0 s;
    let reached = ref false in
    while (not !reached) && not (Pq.is_empty !pq) do
      let (c, _, n) as elt = Pq.min_elt !pq in
      pq := Pq.remove elt !pq;
      let key = Ids.node_to_int n in
      if not (Hashtbl.mem settled key) then begin
        Hashtbl.replace settled key ();
        if Ids.equal_node n e then reached := true
        else
          search_neighbours st rp n (fun cands ->
              List.iter
                (fun (r, next) ->
                  let w = cost_of r in
                  if w < 0.0 then
                    eval_error
                      "cheapestPath: negative '%s' cost on a relationship" prop;
                  let nk = Ids.node_to_int next in
                  if not (Hashtbl.mem settled nk) then begin
                    let nc = c +. w in
                    let better =
                      match Hashtbl.find_opt dist nk with
                      | Some old -> nc < old
                      | None -> true
                    in
                    if better then begin
                      Hashtbl.replace dist nk nc;
                      Hashtbl.replace parent nk (r, n);
                      push nc next
                    end
                  end)
                cands)
      end
    done;
    if not !reached then []
    else begin
      let rec rebuild n acc =
        if Ids.equal_node n s then acc
        else
          let r, prev = Hashtbl.find parent (Ids.node_to_int n) in
          rebuild prev ((r, n) :: acc)
      in
      [ rebuild e [] ]
    end
  in
  (* Matches a shortestPath / allShortestPaths / cheapestPath pattern:
     both endpoints are enumerated (bound endpoints give singleton
     candidate sets) and bound *before* the search so relationship
     property predicates can see the end variable, then the search
     produces the candidate step lists.  In Shortest mode the BFS's
     arbitrary survivor among equal-length paths can be rejected by the
     rest of the pattern tuple (shared relationship uniqueness, deferred
     property checks) even though an alternative would survive; when
     that happens we retry every minimal-length candidate
     exhaustively. *)
  let match_path_shortest st (pp : path_pattern) ~mode kont =
    match pp.pp_rest with
    | [ (rp, np_end) ] ->
      if rp.rp_regex <> None then
        eval_error "shortestPath over a type regex is not supported";
      (match mode with
      | `Cheapest _ ->
        let kmin, kmax_opt = Ast.range_of_len rp.rp_len in
        if rp.rp_len = None || kmin > 1 || kmax_opt <> None then
          eval_error
            "cheapestPath requires an unbounded variable-length pattern \
             ([*] or [*0..])"
      | `Single | `All -> ());
      List.iter
        (fun s ->
          match_node st s pp.pp_first (fun st ->
              List.iter
                (fun e ->
                  match_node st e np_end (fun st ->
                      let try_candidate steps =
                        if restr_ok pp.pp_restr s steps then begin
                          let rel_value =
                            match rp.rp_len with
                            | None -> (
                              match steps with
                              | [ (r, _) ] -> Some (Value.Rel r)
                              | _ -> None)
                            | Some _ ->
                              Some
                                (Value.List
                                   (List.map (fun (r, _) -> Value.Rel r) steps))
                          in
                          let bind_rel st kont =
                            match rp.rp_name, rel_value with
                            | None, _ -> kont st
                            | Some _, None -> ()
                            | Some a, Some v -> bind st (Some a) v kont
                          in
                          let st =
                            if track_rels then
                              {
                                st with
                                used_rels =
                                  List.fold_left
                                    (fun acc (r, _) -> Ids.Rel_set.add r acc)
                                    st.used_rels steps;
                              }
                            else st
                          in
                          bind_rel st (fun st ->
                              bind st pp.pp_name
                                (Value.Path { path_start = s; path_steps = steps })
                                kont)
                        end
                      in
                      match mode with
                      | `All ->
                        List.iter try_candidate (shortest_steps st rp s e ~all:true)
                      | `Cheapest prop ->
                        List.iter try_candidate (cheapest_steps st rp s e prop)
                      | `Single -> (
                        match shortest_steps st rp s e ~all:false with
                        | [] -> ()
                        | first :: _ ->
                          let before = List.length !results in
                          try_candidate first;
                          if List.length !results = before then begin
                            (* the arbitrary BFS survivor was pruned by
                               downstream constraints: exhaustive retry
                               over every minimal-length alternative *)
                            let same a b =
                              List.length a = List.length b
                              && List.for_all2
                                   (fun (r1, _) (r2, _) -> Ids.equal_rel r1 r2)
                                   a b
                            in
                            let rec loop = function
                              | [] -> ()
                              | c :: rest ->
                                if not (same c first) then try_candidate c;
                                if List.length !results = before then loop rest
                            in
                            loop (shortest_steps st rp s e ~all:true)
                          end)))
                (candidates_of st np_end)))
        (candidates_of st pp.pp_first)
    | segs ->
      eval_error
        "shortestPath requires a pattern with exactly one relationship \
         segment (got %d)"
        (List.length segs)
  in
  (* Matches a whole path pattern, producing the path value. *)
  let match_path st (pp : path_pattern) kont =
    match pp.pp_shortest with
    | Shortest -> match_path_shortest st pp ~mode:`Single kont
    | All_shortest -> match_path_shortest st pp ~mode:`All kont
    | Cheapest prop -> match_path_shortest st pp ~mode:(`Cheapest prop) kont
    | No_shortest ->
      let start_candidates = candidates_of st pp.pp_first in
      List.iter
        (fun n0 ->
          match_node st n0 pp.pp_first (fun st ->
              let rec hops st cur remaining steps_acc =
                match remaining with
                | [] ->
                  let steps = List.rev steps_acc in
                  if restr_ok pp.pp_restr n0 steps then
                    let path =
                      Value.Path { path_start = n0; path_steps = steps }
                    in
                    bind st pp.pp_name path kont
                | (rp, np) :: rest ->
                  match_hop st cur rp np (fun st steps ->
                      let cur' =
                        match List.rev steps with
                        | (_, last) :: _ -> last
                        | [] -> cur
                      in
                      hops st cur' rest (List.rev_append steps steps_acc))
              in
              hops st n0 pp.pp_rest []))
        start_candidates
  in
  let rec match_all st = function
    | [] ->
      if List.for_all (fun check -> check st.bnd) st.deferred then
        results := Record.project st.bnd new_names :: !results
    | pp :: rest -> match_path st pp (fun st -> match_all st rest)
  in
  match_all init patterns;
  List.rev !results

(* Direct transcription of the base case of pattern satisfaction: given a
   node pattern χ = (a, L, P), [(n, G, u) |= χ] iff (a is nil or u(a) = n),
   L ⊆ λ(n), and [[ι(n,k) = P(k)]]_{G,u} is true for each defined key.  The
   assignment [u] must already bind every free variable. *)
let satisfies_node_pattern cfg g u n np =
  let name_ok =
    match np.np_name with
    | None -> true
    | Some a -> (
      match Record.find u a with
      | Some (Value.Node n0) -> Ids.equal_node n0 n
      | Some _ | None -> false)
  in
  name_ok
  && List.for_all (fun l -> Graph.has_label g n l) np.np_labels
  && List.for_all
       (fun (k, e) ->
         Ternary.is_true
           (Value.equal_ternary (Graph.node_prop g n k) (eval_expr cfg g u e)))
       np.np_props
