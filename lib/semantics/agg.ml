open Cypher_values
open Cypher_ast
open Ast

type spec =
  [ `Count_star
  | `Agg of Ast.agg_fn * bool * Ast.expr
  | `Percentile of bool * bool * Ast.expr * Ast.expr ]

(* ------------------------------------------------------------------ *)

let rec contains_aggregate = function
  | E_count_star | E_agg _ | E_agg_percentile _ -> true
  | E_lit _ | E_var _ | E_param _ -> false
  | E_prop (e, _) | E_not e | E_is_null e | E_is_not_null e | E_neg e ->
    contains_aggregate e
  | E_map kvs -> List.exists (fun (_, e) -> contains_aggregate e) kvs
  | E_list es | E_fn (_, es) -> List.exists contains_aggregate es
  | E_in (a, b) | E_index (a, b)
  | E_starts_with (a, b) | E_ends_with (a, b) | E_contains (a, b)
  | E_regex_match (a, b)
  | E_or (a, b) | E_and (a, b) | E_xor (a, b)
  | E_cmp (_, a, b) | E_arith (_, a, b) ->
    contains_aggregate a || contains_aggregate b
  | E_slice (e, lo, hi) ->
    contains_aggregate e
    || Option.fold ~none:false ~some:contains_aggregate lo
    || Option.fold ~none:false ~some:contains_aggregate hi
  | E_has_labels (e, _) -> contains_aggregate e
  | E_case { case_subject; case_branches; case_default } ->
    Option.fold ~none:false ~some:contains_aggregate case_subject
    || List.exists
         (fun (w, t) -> contains_aggregate w || contains_aggregate t)
         case_branches
    || Option.fold ~none:false ~some:contains_aggregate case_default
  | E_list_comp { lc_source; lc_where; lc_body; _ } ->
    contains_aggregate lc_source
    || Option.fold ~none:false ~some:contains_aggregate lc_where
    || Option.fold ~none:false ~some:contains_aggregate lc_body
  | E_pattern_pred _ | E_exists_pattern _ | E_pattern_comp _ -> false
  | E_map_projection (e, items) ->
    contains_aggregate e
    || List.exists
         (function
           | Mp_literal (_, e) -> contains_aggregate e
           | Mp_property _ | Mp_all_properties | Mp_variable _ -> false)
         items
  | E_quantified (_, _, src, pred) ->
    contains_aggregate src || contains_aggregate pred
  | E_reduce { rd_init; rd_list; rd_body; _ } ->
    contains_aggregate rd_init || contains_aggregate rd_list
    || contains_aggregate rd_body

(* Rewrites an expression, lifting each aggregate subterm out into a
   synthetic variable, so that an aggregating item such as
   [r.name + count(s)] can be evaluated in two stages. *)
(* Global counter: two items of one projection must not share synthetic
   names, since their aggregate results are bound in a single record. *)
let counter = ref 0

let extract_aggregates expr =
  let extracted = ref [] in
  let fresh spec =
    incr counter;
    let name = Printf.sprintf "#agg%d" !counter in
    extracted := (name, spec) :: !extracted;
    E_var name
  in
  let rec go e =
    match e with
    | E_count_star -> fresh `Count_star
    | E_agg (fn, distinct, arg) -> fresh (`Agg (fn, distinct, arg))
    | E_agg_percentile (cont, distinct, v, p) ->
      fresh (`Percentile (cont, distinct, v, p))
    | E_lit _ | E_var _ | E_param _ | E_pattern_pred _ | E_exists_pattern _
    | E_pattern_comp _ ->
      e
    | E_map_projection (e1, items) ->
      E_map_projection
        ( go e1,
          List.map
            (function
              | Mp_literal (k, e) -> Mp_literal (k, go e)
              | other -> other)
            items )
    | E_prop (e1, k) -> E_prop (go e1, k)
    | E_map kvs -> E_map (List.map (fun (k, v) -> (k, go v)) kvs)
    | E_list es -> E_list (List.map go es)
    | E_fn (f, es) -> E_fn (f, List.map go es)
    | E_in (a, b) -> E_in (go a, go b)
    | E_index (a, b) -> E_index (go a, go b)
    | E_slice (e1, lo, hi) -> E_slice (go e1, Option.map go lo, Option.map go hi)
    | E_starts_with (a, b) -> E_starts_with (go a, go b)
    | E_ends_with (a, b) -> E_ends_with (go a, go b)
    | E_contains (a, b) -> E_contains (go a, go b)
    | E_regex_match (a, b) -> E_regex_match (go a, go b)
    | E_or (a, b) -> E_or (go a, go b)
    | E_and (a, b) -> E_and (go a, go b)
    | E_xor (a, b) -> E_xor (go a, go b)
    | E_not e1 -> E_not (go e1)
    | E_is_null e1 -> E_is_null (go e1)
    | E_is_not_null e1 -> E_is_not_null (go e1)
    | E_cmp (op, a, b) -> E_cmp (op, go a, go b)
    | E_arith (op, a, b) -> E_arith (op, go a, go b)
    | E_neg e1 -> E_neg (go e1)
    | E_has_labels (e1, ls) -> E_has_labels (go e1, ls)
    | E_case { case_subject; case_branches; case_default } ->
      E_case
        {
          case_subject = Option.map go case_subject;
          case_branches = List.map (fun (w, t) -> (go w, go t)) case_branches;
          case_default = Option.map go case_default;
        }
    | E_list_comp lc ->
      E_list_comp
        {
          lc with
          lc_source = go lc.lc_source;
          lc_where = Option.map go lc.lc_where;
          lc_body = Option.map go lc.lc_body;
        }
    | E_quantified (q, x, src, pred) -> E_quantified (q, x, go src, go pred)
    | E_reduce r ->
      E_reduce
        { r with rd_init = go r.rd_init; rd_list = go r.rd_list; rd_body = go r.rd_body }
  in
  let rewritten = go expr in
  (rewritten, List.rev !extracted)

let numeric_add a b =
  match a, b with
  | Value.Int x, Value.Int y -> Value.Int (x + y)
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
    Value.Float (Ops.to_float a +. Ops.to_float b)
  | _ ->
    Value.type_error "sum: expected numbers, got %s and %s" (Value.type_name a)
      (Value.type_name b)

let dedup_values values =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun v ->
      let h = Value.hash v in
      let bucket = try Hashtbl.find seen h with Not_found -> [] in
      if List.exists (Value.equal_total v) bucket then false
      else (
        Hashtbl.replace seen h (v :: bucket);
        true))
    values

(* The argument values an aggregate consumes: evaluated per row with
   nulls dropped, in row order, *before* any DISTINCT dedup.  Exposed
   separately from [finalize] so the parallel executor can evaluate
   values per morsel on worker domains and combine by concatenating the
   per-morsel lists in morsel order — that reproduces the sequential
   row order exactly, so the non-associative float folds in [finalize]
   (sum, avg, stddev) return bitwise-identical results either way. *)
let arg_values cfg g rows spec =
  match spec with
  | `Count_star -> []
  | `Percentile (_, _, value_expr, _) | `Agg (_, _, value_expr) ->
    List.filter
      (fun v -> not (Value.is_null v))
      (List.map (fun row -> Eval.eval_expr cfg g row value_expr) rows)

(* Folds pre-evaluated argument values down to the aggregate's result.
   [first_row] is the group's first input row in sequential order (the
   percentile expression is evaluated against it, as [compute] always
   did); [row_count] is the group's total input row count ([count( * )]
   counts rows, not non-null values). *)
let finalize cfg g ~first_row ~row_count values spec =
  match spec with
  | `Count_star -> Value.Int row_count
  | `Percentile (cont, distinct, _, pct_expr) -> (
    let values = if distinct then dedup_values values else values in
    let pct =
      match first_row with
      | Some row -> Ops.to_float (Eval.eval_expr cfg g row pct_expr)
      | None -> 0.
    in
    (* [not (>= && <=)] rather than [< || >]: NaN fails every comparison,
       so the old form let a NaN percentile through to [int_of_float]. *)
    if not (pct >= 0. && pct <= 1.) then
      Value.type_error "percentile must be between 0.0 and 1.0";
    match List.sort Value.compare_total values with
    | [] -> Value.Null
    | sorted ->
      let n = List.length sorted in
      if cont then begin
        let rank = pct *. float_of_int (n - 1) in
        let lo = int_of_float (Float.floor rank)
        and hi = int_of_float (Float.ceil rank) in
        let vlo = Ops.to_float (List.nth sorted lo)
        and vhi = Ops.to_float (List.nth sorted hi) in
        let frac = rank -. Float.floor rank in
        Value.Float (vlo +. (frac *. (vhi -. vlo)))
      end
      else begin
        (* nearest-rank (disc): smallest value whose cumulative share is
           >= pct *)
        let rank = max 0 (int_of_float (Float.ceil (pct *. float_of_int n)) - 1) in
        List.nth sorted rank
      end)
  | `Agg (fn, distinct, _) -> (
    let values = if distinct then dedup_values values else values in
    match fn with
    | Count -> Value.Int (List.length values)
    | Collect -> Value.List values
    | Sum -> List.fold_left numeric_add (Value.Int 0) values
    | Avg -> (
      match values with
      | [] -> Value.Null
      | _ ->
        let total =
          List.fold_left (fun acc v -> acc +. Ops.to_float v) 0. values
        in
        Value.Float (total /. float_of_int (List.length values)))
    | Min -> (
      match values with
      | [] -> Value.Null
      | v :: rest ->
        List.fold_left
          (fun acc v -> if Value.compare_total v acc < 0 then v else acc)
          v rest)
    | Max -> (
      match values with
      | [] -> Value.Null
      | v :: rest ->
        List.fold_left
          (fun acc v -> if Value.compare_total v acc > 0 then v else acc)
          v rest)
    | Std_dev | Std_dev_p -> (
      (* sample vs population standard deviation *)
      match values with
      | [] -> Value.Null
      | [ _ ] -> Value.Float 0.
      | _ ->
        let xs = List.map Ops.to_float values in
        let n = float_of_int (List.length xs) in
        let mean = List.fold_left ( +. ) 0. xs /. n in
        let ss =
          List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
        in
        let divisor = if fn = Std_dev then n -. 1. else n in
        Value.Float (sqrt (ss /. divisor))))

let compute cfg g rows spec =
  finalize cfg g
    ~first_row:(match rows with row :: _ -> Some row | [] -> None)
    ~row_count:(List.length rows)
    (arg_values cfg g rows spec)
    spec

