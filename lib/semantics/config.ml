open Cypher_values

type morphism = Edge_isomorphism | Node_isomorphism | Homomorphism

type t = {
  morphism : morphism;
  var_length_cap : int option;
  params : Value.t Value.Smap.t;
  parallel : int;
}

(* CYPHER_PARALLEL=N makes parallel read execution the default for the
   whole process without touching any call site — CI uses it to run the
   entire test suite through the parallel executor. *)
let default_parallel =
  match Sys.getenv_opt "CYPHER_PARALLEL" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)
  | None -> 1

let default =
  {
    morphism = Edge_isomorphism;
    var_length_cap = None;
    params = Value.Smap.empty;
    parallel = default_parallel;
  }

let with_params kvs t =
  {
    t with
    params = List.fold_left (fun m (k, v) -> Value.Smap.add k v m) t.params kvs;
  }

let with_morphism m t = { t with morphism = m }
let with_parallel n t = { t with parallel = max 1 n }

let morphism_name = function
  | Edge_isomorphism -> "edge-isomorphism"
  | Node_isomorphism -> "node-isomorphism"
  | Homomorphism -> "homomorphism"
