open Cypher_ast
open Ast

module Sset = Set.Make (String)

exception Undefined of string
exception Invalid_pattern of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid_pattern s)) fmt

(* Static shape checks for the path-finding extensions: shortest and
   cheapest patterns take exactly one relationship segment, and neither
   they, restrictors nor type regexes make sense in update patterns. *)
let check_path_pattern ~updating pp =
  (match pp.pp_shortest with
  | No_shortest -> ()
  | mode ->
    let name =
      match mode with
      | Shortest -> "shortestPath"
      | All_shortest -> "allShortestPaths"
      | Cheapest _ -> "cheapestPath"
      | No_shortest -> assert false
    in
    if updating then invalid "%s cannot be used in an update pattern" name;
    if List.length pp.pp_rest <> 1 then
      invalid
        "%s requires a pattern with exactly one relationship segment (got %d)"
        name (List.length pp.pp_rest);
    match pp.pp_rest with
    | [ (rp, _) ] when rp.rp_regex <> None ->
      invalid "%s over a type regex is not supported" name
    | _ -> ());
  if updating then begin
    if pp.pp_restr <> Walk then
      invalid "path restrictors cannot be used in an update pattern";
    List.iter
      (fun (rp, _) ->
        if rp.rp_regex <> None then
          invalid "type regexes cannot be used in an update pattern")
      pp.pp_rest
  end

(* Variables an expression requires to be in scope.  Unlike
   [Ast.expr_free_vars], pattern predicates contribute nothing: their
   variables are existential (new ones may be introduced freely). *)
let rec required_vars e =
  match e with
  | E_lit _ | E_param _ | E_count_star -> []
  | E_var a -> [ a ]
  | E_prop (e, _) | E_not e | E_is_null e | E_is_not_null e | E_neg e
  | E_has_labels (e, _) | E_agg (_, _, e) ->
    required_vars e
  | E_agg_percentile (_, _, a, b) -> required_vars a @ required_vars b
  | E_map kvs -> List.concat_map (fun (_, e) -> required_vars e) kvs
  | E_list es | E_fn (_, es) -> List.concat_map required_vars es
  | E_in (a, b) | E_index (a, b)
  | E_starts_with (a, b) | E_ends_with (a, b) | E_contains (a, b)
  | E_regex_match (a, b)
  | E_or (a, b) | E_and (a, b) | E_xor (a, b)
  | E_cmp (_, a, b) | E_arith (_, a, b) ->
    required_vars a @ required_vars b
  | E_slice (e, lo, hi) ->
    required_vars e
    @ (match lo with Some e -> required_vars e | None -> [])
    @ (match hi with Some e -> required_vars e | None -> [])
  | E_case { case_subject; case_branches; case_default } ->
    (match case_subject with Some e -> required_vars e | None -> [])
    @ List.concat_map
        (fun (w, t) -> required_vars w @ required_vars t)
        case_branches
    @ (match case_default with Some e -> required_vars e | None -> [])
  | E_list_comp { lc_var; lc_source; lc_where; lc_body } ->
    required_vars lc_source
    @ List.filter
        (fun v -> not (String.equal v lc_var))
        ((match lc_where with Some e -> required_vars e | None -> [])
        @ match lc_body with Some e -> required_vars e | None -> [])
  | E_quantified (_, x, src, pred) ->
    required_vars src
    @ List.filter (fun v -> not (String.equal v x)) (required_vars pred)
  | E_reduce { rd_acc; rd_init; rd_var; rd_list; rd_body } ->
    required_vars rd_init @ required_vars rd_list
    @ List.filter
        (fun v -> not (String.equal v rd_acc || String.equal v rd_var))
        (required_vars rd_body)
  | E_map_projection (e, items) ->
    required_vars e
    @ List.concat_map
        (function
          | Mp_property _ | Mp_all_properties -> []
          | Mp_literal (_, e) -> required_vars e
          | Mp_variable v -> [ v ])
        items
  | E_pattern_pred p | E_exists_pattern p ->
    (* existential, but property expressions inside the pattern still
       reference the outer scope (or the pattern's own variables) *)
    pattern_internal_requirements [ p ]
  | E_pattern_comp { pc_pattern; pc_where; pc_body } ->
    let own = Ast.free_path_pattern pc_pattern in
    pattern_internal_requirements [ pc_pattern ]
    @ List.filter
        (fun v -> not (List.mem v own))
        (required_vars pc_body
        @ match pc_where with Some e -> required_vars e | None -> [])

(* Property expressions within patterns may use the pattern's own
   variables; anything else must come from outside. *)
and pattern_internal_requirements pps =
  let own = Sset.of_list (Ast.free_pattern_tuple pps) in
  let of_props props =
    List.concat_map (fun (_, e) -> required_vars e) props
  in
  List.concat_map
    (fun pp ->
      of_props pp.pp_first.np_props
      @ List.concat_map
          (fun (rp, np) -> of_props rp.rp_props @ of_props np.np_props)
          pp.pp_rest)
    pps
  |> List.filter (fun v -> not (Sset.mem v own))

let need scope vars =
  List.iter (fun v -> if not (Sset.mem v scope) then raise (Undefined v)) vars

let need_expr scope e = need scope (required_vars e)

let check_projection scope proj =
  let items_scope =
    List.fold_left
      (fun acc item ->
        need_expr scope item.ri_expr;
        Sset.add (Clauses.item_name item) acc)
      (if proj.pj_star then scope else Sset.empty)
      proj.pj_items
  in
  (* ORDER BY sees both the projected names and the source scope *)
  List.iter
    (fun (e, _) -> need (Sset.union scope items_scope) (required_vars e))
    proj.pj_order_by;
  (* SKIP and LIMIT cannot reference variables *)
  (match proj.pj_skip with Some e -> need_expr Sset.empty e | None -> ());
  (match proj.pj_limit with Some e -> need_expr Sset.empty e | None -> ());
  items_scope

let check_set_items scope pattern_scope items =
  let s = Sset.union scope pattern_scope in
  List.iter
    (function
      | S_prop (target, _, e) ->
        need_expr s target;
        need_expr s e
      | S_all_props (a, e) | S_merge_props (a, e) ->
        need s [ a ];
        need_expr s e
      | S_labels (a, _) -> need s [ a ])
    items

let rec check_clause scope clause =
  match clause with
  | C_foreach { fe_var; fe_list; fe_clauses } ->
    need_expr scope fe_list;
    let inner = List.fold_left check_clause (Sset.add fe_var scope) fe_clauses in
    ignore inner;
    scope
  | C_match { pattern; where; _ } ->
    List.iter (check_path_pattern ~updating:false) pattern;
    need scope (pattern_internal_requirements pattern);
    let scope = Sset.union scope (Sset.of_list (Ast.free_pattern_tuple pattern)) in
    (match where with Some e -> need_expr scope e | None -> ());
    scope
  | C_with { proj; where } ->
    let scope' = check_projection scope proj in
    (match where with Some e -> need_expr scope' e | None -> ());
    scope'
  | C_unwind (e, a) ->
    need_expr scope e;
    Sset.add a scope
  | C_create pattern ->
    List.iter (check_path_pattern ~updating:true) pattern;
    need scope (pattern_internal_requirements pattern);
    Sset.union scope (Sset.of_list (Ast.free_pattern_tuple pattern))
  | C_delete { exprs; _ } ->
    List.iter (need_expr scope) exprs;
    scope
  | C_set items ->
    check_set_items scope Sset.empty items;
    scope
  | C_remove items ->
    List.iter
      (function
        | R_prop (target, _) -> need_expr scope target
        | R_labels (a, _) -> need scope [ a ])
      items;
    scope
  | C_merge { pattern; on_create; on_match } ->
    check_path_pattern ~updating:true pattern;
    need scope (pattern_internal_requirements [ pattern ]);
    let pattern_scope = Sset.of_list (Ast.free_path_pattern pattern) in
    check_set_items scope pattern_scope on_create;
    check_set_items scope pattern_scope on_match;
    Sset.union scope pattern_scope
  | C_call { args; yield_; _ } ->
    List.iter (need_expr scope) args;
    List.fold_left
      (fun acc (c, alias) -> Sset.add (Option.value alias ~default:c) acc)
      scope yield_

let check_single sq =
  let scope = List.fold_left check_clause Sset.empty sq.sq_clauses in
  match sq.sq_return with
  | Some proj -> ignore (check_projection scope proj)
  | None -> ()

let rec check = function
  | Q_single sq -> check_single sq
  | Q_union (q1, q2) | Q_union_all (q1, q2) ->
    check q1;
    check q2

let check_query q =
  match check q with
  | () -> Ok ()
  | exception Undefined v ->
    Error (Printf.sprintf "variable `%s` not defined" v)
  | exception Invalid_pattern msg -> Error msg
