open Cypher_values
open Cypher_graph
open Cypher_table
open Cypher_ast
open Ast

let eval_error = Functions.eval_error

type state = { graph : Graph.t; table : Table.t }

(* ------------------------------------------------------------------ *)
(* Projection (RETURN / WITH)                                          *)
(* ------------------------------------------------------------------ *)

let item_name { ri_expr; ri_alias } =
  match ri_alias with
  | Some a -> a
  | None -> Cypher_ast.Pretty.expr_to_string ri_expr

let expand_star proj table =
  if not proj.pj_star then proj.pj_items
  else
    let existing =
      List.map
        (fun b -> { ri_expr = E_var b; ri_alias = Some b })
        (Table.fields table)
    in
    existing @ proj.pj_items

let check_distinct_names names =
  let sorted = List.sort String.compare names in
  let rec dup = function
    | a :: b :: _ when String.equal a b -> Some a
    | _ :: rest -> dup rest
    | [] -> None
  in
  match dup sorted with
  | Some a -> eval_error "duplicate column name in projection: %s" a
  | None -> ()

(* Rewrites an ORDER BY expression: a subexpression that syntactically
   equals a projected item is replaced by a reference to that item's
   column, so that [ORDER BY count(s)] resolves to the already-computed
   aggregate and [ORDER BY n.name] to the projected value. *)
let rewrite_order_expr items names e =
  let table = List.combine items names in
  let lookup e =
    List.find_map
      (fun (item, name) -> if item.ri_expr = e then Some name else None)
      table
  in
  let rec go e =
    match lookup e with
    | Some name -> E_var name
    | None -> (
      match e with
      | E_prop (e1, k) -> E_prop (go e1, k)
      | E_not e1 -> E_not (go e1)
      | E_neg e1 -> E_neg (go e1)
      | E_cmp (op, a, b) -> E_cmp (op, go a, go b)
      | E_arith (op, a, b) -> E_arith (op, go a, go b)
      | E_and (a, b) -> E_and (go a, go b)
      | E_or (a, b) -> E_or (go a, go b)
      | E_xor (a, b) -> E_xor (go a, go b)
      | E_fn (f, es) -> E_fn (f, List.map go es)
      | E_list es -> E_list (List.map go es)
      | e -> e)
  in
  go e

let apply_projection cfg ~kw proj { graph = g; table } =
  ignore kw;
  let items = expand_star proj table in
  if items = [] then eval_error "projection with no columns";
  let names = List.map item_name items in
  check_distinct_names names;
  let aggregating = List.exists (fun i -> Agg.contains_aggregate i.ri_expr) items in
  (* Each output record is paired with a source record, so that ORDER BY
     can also see the pre-projection variables (e.g. ORDER BY n.age when
     only n.name was projected).  For aggregating projections the source
     is a representative row of the group. *)
  let projected_pairs =
    if not aggregating then
      List.map
        (fun row ->
          ( row,
            Record.of_list
              (List.map2
                 (fun name item -> (name, Eval.eval_expr cfg g row item.ri_expr))
                 names items) ))
        (Table.rows table)
    else begin
      (* Implicit grouping: the non-aggregating items are the grouping
         key (Section 3: "a non-aggregating expression ... acts as an
         implicit grouping key"). *)
      let key_items = List.filter (fun i -> not (Agg.contains_aggregate i.ri_expr)) items in
      let key_fn row =
        List.map (fun i -> Eval.eval_expr cfg g row i.ri_expr) key_items
      in
      let groups =
        if key_items = [] then [ ([], Table.rows table) ]
        else Table.group_by table ~key:key_fn
      in
      List.map
        (fun (_key, rows) ->
          let repr = match rows with r :: _ -> r | [] -> Record.empty in
          ( repr,
            Record.of_list
              (List.map2
                 (fun name item ->
                   if Agg.contains_aggregate item.ri_expr then begin
                     let rewritten, specs = Agg.extract_aggregates item.ri_expr in
                     let env =
                       List.fold_left
                         (fun env (nm, spec) ->
                           Record.add env nm (Agg.compute cfg g rows spec))
                         repr specs
                     in
                     (name, Eval.eval_expr cfg g env rewritten)
                   end
                   else (name, Eval.eval_expr cfg g repr item.ri_expr))
                 names items) ))
        groups
    end
  in
  let pairs =
    if proj.pj_distinct then begin
      let seen = Hashtbl.create 64 in
      List.filter
        (fun (_, out) ->
          let h = Record.hash out in
          let bucket = try Hashtbl.find seen h with Not_found -> [] in
          if List.exists (Record.equal out) bucket then false
          else (
            Hashtbl.replace seen h (out :: bucket);
            true))
        projected_pairs
    end
    else projected_pairs
  in
  let pairs =
    if proj.pj_order_by = [] then pairs
    else
      let order_by =
        List.map
          (fun (e, d) -> (rewrite_order_expr items names e, d))
          proj.pj_order_by
      in
      let env (src, out) = Record.overlay src out in
      let compare_pairs p1 p2 =
        let rec go = function
          | [] -> 0
          | (e, dir) :: rest ->
            let v1 = Eval.eval_expr cfg g (env p1) e
            and v2 = Eval.eval_expr cfg g (env p2) e in
            let c = Value.compare_total v1 v2 in
            let c = match dir with Asc -> c | Desc -> -c in
            if c <> 0 then c else go rest
        in
        go order_by
      in
      List.stable_sort compare_pairs pairs
  in
  let t = Table.create ~fields:names (List.map snd pairs) in
  let eval_count what = function
    | None -> None
    | Some e -> (
      match Eval.eval_expr cfg g Record.empty e with
      | Value.Int n when n >= 0 -> Some n
      | Value.Int n ->
        eval_error "%s: expected a non-negative integer, got %d" what n
      | v ->
        eval_error "%s: expected an integer, got %s" what (Value.type_name v))
  in
  let t =
    match eval_count "SKIP" proj.pj_skip with Some n -> Table.skip t n | None -> t
  in
  let t =
    match eval_count "LIMIT" proj.pj_limit with
    | Some n -> Table.limit t n
    | None -> t
  in
  { graph = g; table = t }

(* ------------------------------------------------------------------ *)
(* Reading clauses                                                     *)
(* ------------------------------------------------------------------ *)

let where_filter cfg g expr table =
  match expr with
  | None -> table
  | Some e ->
    Table.filter table (fun row -> Ternary.is_true (Eval.eval_truth cfg g row e))

let match_fields table pattern =
  List.sort_uniq String.compare
    (Table.fields table @ Ast.free_pattern_tuple pattern)

let apply_match cfg ~opt ~pattern ~where { graph = g; table } =
  let fields = match_fields table pattern in
  let table' =
    if not opt then
      let expanded =
        Table.concat_map table ~fields (fun row ->
            List.map (Record.combine row)
              (Eval.match_pattern_tuple cfg g row pattern))
      in
      where_filter cfg g where expanded
    else
      (* OPTIONAL MATCH (Figure 7): per driving row, if the matching
         clause (including its WHERE) yields rows, take them; otherwise
         keep the row padded with nulls. *)
      Table.concat_map table ~fields (fun row ->
          let matched =
            List.map (Record.combine row)
              (Eval.match_pattern_tuple cfg g row pattern)
          in
          let matched =
            match where with
            | None -> matched
            | Some e ->
              List.filter
                (fun r -> Ternary.is_true (Eval.eval_truth cfg g r e))
                matched
          in
          if matched <> [] then matched
          else
            let missing =
              List.filter (fun a -> not (Record.mem row a)) fields
            in
            [ Record.with_nulls row missing ])
  in
  { graph = g; table = table' }

let apply_unwind cfg (e, a) { graph = g; table } =
  let fields = List.sort_uniq String.compare (a :: Table.fields table) in
  let table' =
    Table.concat_map table ~fields (fun row ->
        match Eval.eval_expr cfg g row e with
        | Value.List vs -> List.map (fun v -> Record.add row a v) vs
        | Value.Null -> []
        | v -> [ Record.add row a v ])
  in
  { graph = g; table = table' }

(* ------------------------------------------------------------------ *)
(* Update clauses                                                      *)
(* ------------------------------------------------------------------ *)

let eval_props cfg g row props =
  List.map (fun (k, e) -> (k, Eval.eval_expr cfg g row e)) props

(* Instantiates one path pattern for CREATE (and the create branch of
   MERGE).  Bound node variables are reused; everything else is created. *)
let create_path cfg ~allow_decorated_bound g row (pp : path_pattern) =
  let create_node g row (np : node_pattern) =
    match np.np_name with
    | Some a when Record.mem row a -> (
      match Record.find_or_null row a with
      | Value.Node n when Graph.mem_node g n ->
        if (not allow_decorated_bound) && (np.np_labels <> [] || np.np_props <> [])
        then
          eval_error
            "CREATE: variable %s is already bound; it cannot be redeclared \
             with labels or properties"
            a
        else (g, row, n)
      | Value.Node _ -> eval_error "CREATE: node bound to %s no longer exists" a
      | v ->
        eval_error "CREATE: variable %s is bound to %s, not a node" a
          (Value.type_name v))
    | name ->
      let g, n =
        Graph.add_node ~labels:np.np_labels ~props:(eval_props cfg g row np.np_props) g
      in
      let row =
        match name with Some a -> Record.add row a (Value.Node n) | None -> row
      in
      (g, row, n)
  in
  let g, row, first = create_node g row pp.pp_first in
  let g, row, _last, steps_rev =
    List.fold_left
      (fun (g, row, prev, steps) ((rp : rel_pattern), np) ->
        let rel_type =
          match rp.rp_types with
          | [ t ] -> t
          | _ -> eval_error "CREATE: a relationship must have exactly one type"
        in
        if rp.rp_len <> None then
          eval_error "CREATE: variable-length relationships cannot be created";
        let g, row, next = create_node g row np in
        let src, tgt =
          match rp.rp_dir with
          | Left_to_right -> (prev, next)
          | Right_to_left -> (next, prev)
          | Undirected ->
            eval_error "CREATE: relationships must have a direction"
        in
        let g, r =
          Graph.add_rel ~src ~tgt ~rel_type
            ~props:(eval_props cfg g row rp.rp_props) g
        in
        let row =
          match rp.rp_name with
          | Some a -> Record.add row a (Value.Rel r)
          | None -> row
        in
        (g, row, next, (r, next) :: steps))
      (g, row, first, []) pp.pp_rest
  in
  let row =
    match pp.pp_name with
    | Some a ->
      Record.add row a
        (Value.Path { path_start = first; path_steps = List.rev steps_rev })
    | None -> row
  in
  (g, row)

let apply_create cfg pattern { graph = g; table } =
  let fields =
    List.sort_uniq String.compare
      (Table.fields table @ Ast.free_pattern_tuple pattern)
  in
  let g = ref g in
  let rows =
    List.map
      (fun row ->
        List.fold_left
          (fun row pp ->
            let g', row' = create_path cfg ~allow_decorated_bound:false !g row pp in
            g := g';
            row')
          row pattern)
      (Table.rows table)
  in
  { graph = !g; table = Table.create ~fields rows }

let delete_value ~detach g v =
  match v with
  | Value.Null -> g
  | Value.Node n ->
    if not (Graph.mem_node g n) then g
    else if detach then Graph.detach_delete_node g n
    else (
      match Graph.delete_node g n with
      | Ok g -> g
      | Error msg -> eval_error "DELETE: %s" msg)
  | Value.Rel r -> Graph.delete_rel g r
  | Value.Path p ->
    let g = List.fold_left Graph.delete_rel g (Value.path_rels p) in
    List.fold_left
      (fun g n ->
        if not (Graph.mem_node g n) then g
        else if detach then Graph.detach_delete_node g n
        else
          match Graph.delete_node g n with
          | Ok g -> g
          | Error msg -> eval_error "DELETE: %s" msg)
      g (Value.path_nodes p)
  | v -> Value.type_error "DELETE: cannot delete %s" (Value.type_name v)

let apply_delete cfg ~detach exprs { graph = g; table } =
  let g =
    List.fold_left
      (fun g row ->
        List.fold_left
          (fun g e -> delete_value ~detach g (Eval.eval_expr cfg g row e))
          g exprs)
      g (Table.rows table)
  in
  { graph = g; table }

let props_of_value ~what v =
  match v with
  | Value.Map m -> Value.Smap.bindings m
  | v -> Value.type_error "%s: expected a map, got %s" what (Value.type_name v)

let set_entity_props g target bindings ~replace =
  match target with
  | Value.Node n ->
    let g =
      if replace then
        List.fold_left
          (fun g (k, _) -> Graph.remove_node_prop g n k)
          g
          (Value.Smap.bindings (Graph.node_props g n))
      else g
    in
    List.fold_left (fun g (k, v) -> Graph.set_node_prop g n k v) g bindings
  | Value.Rel r ->
    let g =
      if replace then
        List.fold_left
          (fun g (k, _) -> Graph.remove_rel_prop g r k)
          g
          (Value.Smap.bindings (Graph.rel_props g r))
      else g
    in
    List.fold_left (fun g (k, v) -> Graph.set_rel_prop g r k v) g bindings
  | Value.Null -> g
  | v ->
    Value.type_error "SET: expected a node or relationship, got %s"
      (Value.type_name v)

let apply_set_items cfg items g row =
  List.fold_left
    (fun g item ->
      match item with
      | S_prop (target, k, e) -> (
        let v = Eval.eval_expr cfg g row e in
        match Eval.eval_expr cfg g row target with
        | Value.Node n -> Graph.set_node_prop g n k v
        | Value.Rel r -> Graph.set_rel_prop g r k v
        | Value.Null -> g
        | tv ->
          Value.type_error "SET: expected a node or relationship, got %s"
            (Value.type_name tv))
      | S_all_props (a, e) ->
        let target = Record.find_or_null row a in
        let v = Eval.eval_expr cfg g row e in
        let bindings =
          match v with
          | Value.Node n -> Value.Smap.bindings (Graph.node_props g n)
          | Value.Rel r -> Value.Smap.bindings (Graph.rel_props g r)
          | _ -> props_of_value ~what:"SET =" v
        in
        set_entity_props g target bindings ~replace:true
      | S_merge_props (a, e) ->
        let target = Record.find_or_null row a in
        let v = Eval.eval_expr cfg g row e in
        set_entity_props g target (props_of_value ~what:"SET +=" v) ~replace:false
      | S_labels (a, labels) -> (
        match Record.find_or_null row a with
        | Value.Node n ->
          List.fold_left (fun g l -> Graph.add_label g n l) g labels
        | Value.Null -> g
        | v ->
          Value.type_error "SET label: expected a node, got %s"
            (Value.type_name v)))
    g items

let apply_set cfg items { graph = g; table } =
  let g =
    List.fold_left (fun g row -> apply_set_items cfg items g row) g
      (Table.rows table)
  in
  { graph = g; table }

let apply_remove cfg items { graph = g; table } =
  let remove_one g row item =
    match item with
    | R_prop (target, k) -> (
      match Eval.eval_expr cfg g row target with
      | Value.Node n -> Graph.remove_node_prop g n k
      | Value.Rel r -> Graph.remove_rel_prop g r k
      | Value.Null -> g
      | v ->
        Value.type_error "REMOVE: expected a node or relationship, got %s"
          (Value.type_name v))
    | R_labels (a, labels) -> (
      match Record.find_or_null row a with
      | Value.Node n ->
        List.fold_left (fun g l -> Graph.remove_label g n l) g labels
      | Value.Null -> g
      | v ->
        Value.type_error "REMOVE label: expected a node, got %s"
          (Value.type_name v))
  in
  let g =
    List.fold_left
      (fun g row -> List.fold_left (fun g item -> remove_one g row item) g items)
      g (Table.rows table)
  in
  { graph = g; table }

let apply_merge cfg ~pattern ~on_create ~on_match { graph = g; table } =
  let fields =
    List.sort_uniq String.compare
      (Table.fields table @ Ast.free_path_pattern pattern)
  in
  let g = ref g in
  let rows =
    List.concat_map
      (fun row ->
        let matches = Eval.match_pattern_tuple cfg !g row [ pattern ] in
        if matches <> [] then
          List.map
            (fun u' ->
              let row' = Record.combine row u' in
              g := apply_set_items cfg on_match !g row';
              row')
            matches
        else begin
          let g', row' = create_path cfg ~allow_decorated_bound:true !g row pattern in
          g := apply_set_items cfg on_create g' row';
          [ row' ]
        end)
      (Table.rows table)
  in
  { graph = !g; table = Table.create ~fields rows }

(* ------------------------------------------------------------------ *)
(* Putting it together                                                 *)
(* ------------------------------------------------------------------ *)

let apply_call cfg ~proc ~args ~yield_ { graph = g; table } =
  (* each driving row is cross-joined with the procedure's result rows,
     restricted and renamed per the YIELD list *)
  let selection columns =
    match yield_ with
    | [] -> List.map (fun c -> (c, c)) columns
    | items ->
      List.map
        (fun (c, alias) ->
          if not (List.mem c columns) then
            eval_error "procedure %s does not yield column %s" proc c;
          (c, Option.value alias ~default:c))
        items
  in
  let out_fields = ref [] in
  let rows =
    List.concat_map
      (fun row ->
        let argv = List.map (fun e -> Eval.eval_expr cfg g row e) args in
        let result = Procedures.call g proc argv in
        let sel = selection result.Procedures.columns in
        out_fields :=
          List.sort_uniq String.compare
            (Table.fields table @ List.map snd sel);
        List.map
          (fun prow ->
            List.fold_left
              (fun acc (c, alias) ->
                let idx =
                  match
                    List.find_index (String.equal c) result.Procedures.columns
                  with
                  | Some i -> i
                  | None -> assert false
                in
                Record.add acc alias (List.nth prow idx))
              row sel)
          result.Procedures.rows)
      (Table.rows table)
  in
  let fields =
    if !out_fields <> [] then !out_fields
    else
      (* empty input or no rows: derive fields without running *)
      List.sort_uniq String.compare
        (Table.fields table
        @ List.map
            (fun (c, alias) -> Option.value alias ~default:c)
            yield_)
  in
  { graph = g; table = Table.create ~fields rows }

let rec apply_clause cfg clause state =
  match clause with
  | C_foreach { fe_var; fe_list; fe_clauses } ->
    (* per driving row, bind the variable to each list element and apply
       the update clauses; the driving table itself is unchanged *)
    let g =
      List.fold_left
        (fun g row ->
          match Eval.eval_expr cfg g row fe_list with
          | Value.Null -> g
          | Value.List elems ->
            List.fold_left
              (fun g v ->
                let inner_row = Record.add row fe_var v in
                let inner =
                  List.fold_left
                    (fun st c -> apply_clause cfg c st)
                    {
                      graph = g;
                      table = Table.create ~fields:(Record.dom inner_row) [ inner_row ];
                    }
                    fe_clauses
                in
                inner.graph)
              g elems
          | v ->
            Value.type_error "FOREACH: expected a list, got %s"
              (Value.type_name v))
        state.graph (Table.rows state.table)
    in
    { state with graph = g }
  | C_call { proc; args; yield_ } -> apply_call cfg ~proc ~args ~yield_ state
  | C_match { opt; pattern; where } -> apply_match cfg ~opt ~pattern ~where state
  | C_with { proj; where } ->
    let state = apply_projection cfg ~kw:"WITH" proj state in
    { state with table = where_filter cfg state.graph where state.table }
  | C_unwind (e, a) -> apply_unwind cfg (e, a) state
  | C_create pattern -> apply_create cfg pattern state
  | C_delete { detach; exprs } -> apply_delete cfg ~detach exprs state
  | C_set items -> apply_set cfg items state
  | C_remove items -> apply_remove cfg items state
  | C_merge { pattern; on_create; on_match } ->
    apply_merge cfg ~pattern ~on_create ~on_match state

let run_single cfg g { sq_clauses; sq_return } =
  let state =
    List.fold_left
      (fun state clause -> apply_clause cfg clause state)
      { graph = g; table = Table.unit }
      sq_clauses
  in
  match sq_return with
  | Some proj -> apply_projection cfg ~kw:"RETURN" proj state
  | None -> { state with table = Table.empty ~fields:[] }

let rec run_query cfg g = function
  | Q_single sq -> run_single cfg g sq
  | Q_union (q1, q2) ->
    let s1 = run_query cfg g q1 in
    let s2 = run_query cfg s1.graph q2 in
    { graph = s2.graph; table = Table.dedup (Table.union s1.table s2.table) }
  | Q_union_all (q1, q2) ->
    let s1 = run_query cfg g q1 in
    let s2 = run_query cfg s1.graph q2 in
    { graph = s2.graph; table = Table.union s1.table s2.table }

let output cfg g q = (run_query cfg g q).table
