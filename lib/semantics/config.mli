(** Evaluation configuration.

    Cypher 9 matches patterns with relationship isomorphism: "each
    matched instance of a given pattern never binds the same relationship
    from the underlying data graph to more than one relationship variable
    or path variable" (Section 8).  The paper envisions making the
    morphism configurable (homomorphism, node isomorphism); this
    configuration realises that extension. *)

open Cypher_values

type morphism =
  | Edge_isomorphism
      (** The Cypher 9 default: no relationship is traversed twice within
          one MATCH. *)
  | Node_isomorphism
      (** No node appears twice among the nodes visited by the match. *)
  | Homomorphism
      (** No uniqueness restriction; variable-length patterns are cut off
          at {!field-var_length_cap} hops to keep the result finite, as the
          discussion in Section 4.2 requires. *)

type t = {
  morphism : morphism;
  var_length_cap : int option;
      (** Upper bound on variable-length hops when the pattern gives none.
          [None] means |R(G)| (sound for edge isomorphism, where a path
          cannot repeat a relationship).  Homomorphism always needs a cap;
          when [None] it also defaults to |R(G)|. *)
  params : Value.t Value.Smap.t;  (** bindings for [$param] references *)
  parallel : int;
      (** Worker-domain budget for read-only query execution: [1] (the
          default) runs everything sequentially on the calling thread;
          [n > 1] lets the executor split leaf scans into morsels and
          run them on up to [n] domains (the caller included).  Writes
          and transactions ignore this and stay single-writer. *)
}

val default : t
(** [parallel] defaults to [$CYPHER_PARALLEL] when that is set to an
    integer >= 1, else to 1. *)

val with_params : (string * Value.t) list -> t -> t
val with_morphism : morphism -> t -> t

val with_parallel : int -> t -> t
(** Clamped below at 1. *)

val morphism_name : morphism -> string
