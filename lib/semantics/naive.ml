open Cypher_values
open Cypher_graph
open Cypher_table
open Cypher_ast
open Ast

let eval_error = Functions.eval_error

(* ------------------------------------------------------------------ *)
(* rigid(π): the rigid extension                                       *)
(* ------------------------------------------------------------------ *)

let hop_lengths ~max_total (rp : rel_pattern) =
  match rp.rp_len with
  | None -> [ `Nil ] (* I = nil: a single hop binding the relationship *)
  | Some { len_min; len_max } ->
    let lo = Option.value len_min ~default:1 in
    let hi = match len_max with Some n -> min n max_total | None -> max_total in
    let rec range k = if k > hi then [] else `Exact k :: range (k + 1) in
    range lo

let rigid ~max_total (pp : path_pattern) =
  if pp.pp_shortest <> No_shortest then
    invalid_arg "Naive.rigid: shortest-path patterns have no rigid extension";
  if pp.pp_restr <> Walk then
    invalid_arg "Naive.rigid: restrictor modes are not part of Equation (1)";
  if List.exists (fun (rp, _) -> rp.rp_regex <> None) pp.pp_rest then
    invalid_arg "Naive.rigid: type-regex hops have no rigid extension";
  let rec combos budget = function
    | [] -> [ [] ]
    | (rp, np) :: rest ->
      List.concat_map
        (fun choice ->
          let k = match choice with `Nil -> 1 | `Exact k -> k in
          if k > budget then []
          else
            let rp' =
              match choice with
              | `Nil -> { rp with rp_len = None }
              | `Exact k ->
                { rp with rp_len = Some { len_min = Some k; len_max = Some k } }
            in
            List.map
              (fun tail -> (rp', np) :: tail)
              (combos (budget - k) rest))
        (hop_lengths ~max_total rp)
  in
  List.map
    (fun rest -> { pp with pp_rest = rest })
    (combos max_total pp.pp_rest)

(* ------------------------------------------------------------------ *)
(* Path enumeration                                                    *)
(* ------------------------------------------------------------------ *)

let step_candidates g cur =
  (* relationships incident to [cur] with the node on the far side; a
     relationship r may extend the path at cur when cur ∈ {src r, tgt r} *)
  let out = List.map (fun r -> (r, Graph.tgt g r)) (Graph.out_rels g cur) in
  let inc =
    List.filter_map
      (fun r ->
        if Ids.equal_node (Graph.src g r) cur && Ids.equal_node (Graph.tgt g r) cur
        then None (* loop already covered by the out direction *)
        else Some (r, Graph.src g r))
      (Graph.in_rels g cur)
  in
  out @ inc

let paths g ~max_len =
  let results = ref [] in
  let rec extend start steps_rev used cur len =
    results :=
      { Value.path_start = start; path_steps = List.rev steps_rev } :: !results;
    if len < max_len then
      List.iter
        (fun (r, next) ->
          if not (Ids.Rel_set.mem r used) then
            extend start ((r, next) :: steps_rev) (Ids.Rel_set.add r used) next
              (len + 1))
        (step_candidates g cur)
  in
  List.iter (fun n -> extend n [] Ids.Rel_set.empty n 0) (Graph.nodes g);
  List.rev !results

(* ------------------------------------------------------------------ *)
(* Satisfaction of rigid patterns                                      *)
(* ------------------------------------------------------------------ *)

(* Unification environment: the paper's u·u', built incrementally; the
   property constraints [[ι(x,k) = P(k)]] are collected and evaluated at
   the end under the complete assignment, exactly as the definition
   evaluates them under the full u. *)
type env = {
  bnd : Record.t;
  constraints : (Record.t -> Ternary.t) list;
}

let bind env name v =
  match name with
  | None -> Some env
  | Some a -> (
    match Record.find env.bnd a with
    | Some v0 -> if Value.equal_total v0 v then Some env else None
    | None -> Some { env with bnd = Record.add env.bnd a v })

let node_check cfg g env (np : node_pattern) n =
  if not (List.for_all (fun l -> Graph.has_label g n l) np.np_labels) then None
  else
    match bind env np.np_name (Value.Node n) with
    | None -> None
    | Some env ->
      let constraints =
        List.map
          (fun (k, e) u ->
            Value.equal_ternary (Graph.node_prop g n k) (Eval.eval_expr cfg g u e))
          np.np_props
        @ env.constraints
      in
      Some { env with constraints }

let rel_check cfg g env (rp : rel_pattern) r (n_from, n_to) =
  (* (c') type, (d') properties, (e') direction *)
  let type_ok = rp.rp_types = [] || List.mem (Graph.rel_type g r) rp.rp_types in
  let src = Graph.src g r and tgt = Graph.tgt g r in
  let dir_ok =
    match rp.rp_dir with
    | Left_to_right -> Ids.equal_node src n_from && Ids.equal_node tgt n_to
    | Right_to_left -> Ids.equal_node src n_to && Ids.equal_node tgt n_from
    | Undirected ->
      (Ids.equal_node src n_from && Ids.equal_node tgt n_to)
      || (Ids.equal_node src n_to && Ids.equal_node tgt n_from)
  in
  if not (type_ok && dir_ok) then None
  else
    Some
      {
        env with
        constraints =
          List.map
            (fun (k, e) u ->
              Value.equal_ternary (Graph.rel_prop g r k) (Eval.eval_expr cfg g u e))
            rp.rp_props
          @ env.constraints;
      }

(* Decides (p, G, u·u') |= π' for a rigid π', returning the extended
   environment; the decomposition of the path into hop segments is
   unique because every hop length is fixed. *)
let satisfy_rigid cfg g env (pp : path_pattern) (p : Value.path) =
  let hop_len (rp : rel_pattern) =
    match rp.rp_len with
    | None -> 1
    | Some { len_min = Some k; len_max = Some k' } when k = k' -> k
    | Some _ -> invalid_arg "satisfy_rigid: pattern is not rigid"
  in
  let total = List.fold_left (fun acc (rp, _) -> acc + hop_len rp) 0 pp.pp_rest in
  if total <> Value.path_length p then None
  else begin
    let ( >>= ) = Option.bind in
    let rec hops env cur steps = function
      | [] -> Some env
      | (rp, np) :: rest ->
        let k = hop_len rp in
        let rec consume env cur steps i rels_rev =
          if i = k then
            (* bind the relationship variable: r for I = nil, the list
               for I = (m, m) *)
            let value =
              match rp.rp_len with
              | None -> (
                match rels_rev with [ r ] -> Value.Rel r | _ -> assert false)
              | Some _ ->
                Value.List (List.rev_map (fun r -> Value.Rel r) rels_rev)
            in
            bind env rp.rp_name value >>= fun env ->
            node_check cfg g env np cur >>= fun env -> hops env cur steps rest
          else
            match steps with
            | [] -> None
            | (r, next) :: steps ->
              rel_check cfg g env rp r (cur, next) >>= fun env ->
              consume env next steps (i + 1) (r :: rels_rev)
        in
        consume env cur steps 0 []
    in
    node_check cfg g env pp.pp_first p.Value.path_start >>= fun env ->
    hops env p.Value.path_start p.Value.path_steps pp.pp_rest >>= fun env ->
    bind env pp.pp_name (Value.Path p)
  end

(* ------------------------------------------------------------------ *)
(* match(π̄, G, u): Equation (1), by enumeration                       *)
(* ------------------------------------------------------------------ *)

let match_pattern cfg g u patterns =
  if cfg.Config.morphism <> Config.Edge_isomorphism then
    eval_error "Naive.match_pattern implements the paper's semantics only";
  let max_total = Graph.rel_count g in
  let all_paths = paths g ~max_len:max_total in
  let rigids = List.map (rigid ~max_total) patterns in
  let free = Ast.free_pattern_tuple patterns in
  let new_names = List.filter (fun a -> not (Record.mem u a)) free in
  let results = ref [] in
  (* iterate over tuples π̄' ∈ rigid(π̄) and tuples of paths p̄ with
     pairwise-disjoint relationship sets *)
  let rec product env used rigids_rest =
    match rigids_rest with
    | [] ->
      if
        List.for_all
          (fun check -> Ternary.is_true (check env.bnd))
          env.constraints
      then results := Record.project env.bnd new_names :: !results
    | rigid_choices :: rest ->
      List.iter
        (fun pp' ->
          List.iter
            (fun p ->
              let rels = Value.path_rels p in
              let disjoint =
                List.for_all (fun r -> not (Ids.Rel_set.mem r used)) rels
              in
              if disjoint then
                match satisfy_rigid cfg g env pp' p with
                | Some env' ->
                  let used' =
                    List.fold_left
                      (fun acc r -> Ids.Rel_set.add r acc)
                      used rels
                  in
                  product env' used' rest
                | None -> ())
            all_paths)
        rigid_choices
  in
  product { bnd = u; constraints = [] } Ids.Rel_set.empty rigids;
  List.rev !results
