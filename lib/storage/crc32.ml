(* Table-driven CRC-32.  OCaml's native int is at least 63 bits on every
   platform we target, so the 32-bit arithmetic is done in plain ints
   masked to 32 bits. *)

let poly = 0xEDB88320
let mask = 0xFFFFFFFF

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := (!c lsr 1) lxor poly else c := !c lsr 1
         done;
         !c))

let digest_sub ?(crc = 0) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.digest_sub";
  let table = Lazy.force table in
  let c = ref (crc lxor mask) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor mask land mask

let digest ?crc s = digest_sub ?crc s ~pos:0 ~len:(String.length s)
