open Cypher_graph
module Session = Cypher_session.Session
module Engine = Cypher_engine.Engine
module Registry = Cypher_obs.Registry
module Trace = Cypher_obs.Trace

let m_checkpoints =
  Registry.counter ~help:"completed checkpoints (snapshot + WAL truncate)"
    "cypher_storage_checkpoints_total"

let m_recoveries =
  Registry.counter ~help:"store opens that replayed a non-empty WAL tail"
    "cypher_storage_recoveries_total"

type t = {
  dir : string;
  writer : Wal.writer;
  session : Session.t;
  (* statements logged since the last checkpoint; mirrors the WAL tail *)
  mutable tail_records : int;
  mutable last_seq : int;
}

let snapshot_file dir = Filename.concat dir "snapshot.bin"
let wal_file dir = Filename.concat dir "wal.log"

let session t = t.session
let graph t = Session.graph t.session
let run t text = Session.run t.session text
let wal_records t = t.tail_records
let last_seq t = t.last_seq

(* Seconds since the last checkpoint wrote the snapshot, if one exists. *)
let snapshot_age t =
  match Unix.stat (snapshot_file t.dir) with
  | st -> Some (Unix.gettimeofday () -. st.Unix.st_mtime)
  | exception Unix.Unix_error _ -> None

(* Appends a committed batch to the WAL (one write + fsync) and advances
   the tail bookkeeping.  The store's own session commits through this,
   and so do the per-connection sessions of the network server. *)
let wal_append t batch =
  let seq =
    Wal.append t.writer
      (List.map (fun l -> (l.Session.lg_text, l.Session.lg_params)) batch)
  in
  t.tail_records <- t.tail_records + List.length batch;
  if seq > 0 then t.last_seq <- seq

(* Publishes [g] as the committed graph.  Callers must have already made
   the statements that produced [g] durable via [wal_append] — the
   server does both under its exclusive write lock. *)
let publish t g = Session.set_graph t.session g

let ensure_dir dir =
  if Sys.file_exists dir then
    if Sys.is_directory dir then Ok ()
    else Error (dir ^ ": exists and is not a directory")
  else
    match Sys.mkdir dir 0o755 with
    | () -> Ok ()
    | exception Sys_error e -> Error e

let ( let* ) = Result.bind

let open_ ?schema ?mode dir =
  let* () = ensure_dir dir in
  let snap = snapshot_file dir in
  let wal = wal_file dir in
  (* 1. latest snapshot, if any *)
  let* base, snap_seq =
    if Sys.file_exists snap then Snapshot.load_with_seq snap
    else Ok (Graph.empty, 0)
  in
  (* 2. the WAL tail: drop a torn last record, refuse a corrupt interior,
     skip records the snapshot already contains *)
  let* records, next_seq =
    if not (Sys.file_exists wal) then Ok ([], snap_seq + 1)
    else
      let* scan = Wal.scan wal in
      if scan.Wal.torn then Wal.truncate_file wal scan.Wal.valid_len;
      let last_seq =
        List.fold_left (fun acc r -> max acc r.Wal.seq) snap_seq
          scan.Wal.records
      in
      let tail =
        List.filter (fun r -> r.Wal.seq > snap_seq) scan.Wal.records
      in
      Ok (tail, last_seq + 1)
  in
  let* g =
    Trace.with_span "recovery_replay" (fun () ->
        if records <> [] then Registry.incr m_recoveries;
        Wal.replay ?mode base records)
  in
  (* 3. wire the durable session: committed batches append + fsync *)
  let writer = Wal.open_writer ~next_seq wal in
  let store = ref None in
  let on_commit batch =
    match !store with
    | Some t -> wal_append t batch
    | None -> ()
  in
  let session = Session.create ?schema ?mode ~on_commit g in
  let t =
    {
      dir;
      writer;
      session;
      tail_records = List.length records;
      last_seq = next_seq - 1;
    }
  in
  store := Some t;
  Ok t

let checkpoint t =
  if Session.in_transaction t.session then
    Error "checkpoint refused: a transaction is open"
  else begin
    Trace.with_span "checkpoint" @@ fun () ->
    match Snapshot.save ~last_seq:t.last_seq (graph t) (snapshot_file t.dir) with
    | () ->
      Wal.truncate t.writer;
      t.tail_records <- 0;
      Registry.incr m_checkpoints;
      Ok ()
    | exception Sys_error e -> Error ("checkpoint failed: " ^ e)
    | exception Unix.Unix_error (err, _, _) ->
      Error ("checkpoint failed: " ^ Unix.error_message err)
  end

let close t = Wal.close_writer t.writer
