open Cypher_graph
module Session = Cypher_session.Session
module Engine = Cypher_engine.Engine
module Registry = Cypher_obs.Registry
module Trace = Cypher_obs.Trace
module Clock = Cypher_obs.Clock

let m_checkpoints =
  Registry.counter ~help:"completed checkpoints (snapshot + WAL truncate)"
    "cypher_storage_checkpoints_total"

let m_recoveries =
  Registry.counter ~help:"store opens that replayed a non-empty WAL tail"
    "cypher_storage_recoveries_total"

let m_group_flushes =
  Registry.counter ~help:"group-commit flushes (one WAL append + fsync each)"
    "cypher_storage_group_flushes_total"

let m_group_members =
  Registry.counter ~help:"commits made durable by group-commit flushes"
    "cypher_storage_group_members_total"

(* One commit waiting in (or flushed from) the group-commit queue. *)
type pending = {
  p_ticket : int;
  p_batch : Session.logged list;
  p_graph : Graph.t;
}

type ticket = int

type t = {
  dir : string;
  writer : Wal.writer;
  mode : Engine.mode option;  (* execution mode, for replicated replay *)
  session : Session.t;  (* the local (CLI / recovery) session *)
  (* Writers — statement execution and version production — serialise on
     [writer_m].  Readers never touch it: they pin [committed] below. *)
  writer_m : Mutex.t;
  (* [m] guards everything else: the committed-version pointer, the WAL
     tail bookkeeping and the group-commit queue.  Critical sections are
     a few pointer moves — never I/O — except in the flush leader, which
     drops [m] around the append+fsync. *)
  m : Mutex.t;
  flushed_cv : Condition.t;
  mutable committed : Graph.t;  (* latest durable published version *)
  (* the newest version produced by any writer, possibly still waiting
     in the commit queue.  The next writer must build on this, not on
     [committed], or it would silently drop the queued commits' effects;
     once the queue drains the two pointers coincide. *)
  mutable head : Graph.t;
  (* statements logged since the last checkpoint; mirrors the WAL tail *)
  mutable tail_records : int;
  mutable last_seq : int;
  (* group commit: tickets are issued under [writer_m] in version order;
     one leader appends every pending batch with a single fsync *)
  mutable next_ticket : int;
  mutable flushed : int;  (* highest ticket made durable *)
  mutable pending : pending list;  (* unflushed, unordered *)
  mutable leader : bool;
  mutable failed : (int * string) list;  (* per-ticket append failures *)
  mutable poisoned : string option;  (* a flush failed: stop accepting *)
  mutable group_limit : int;  (* max commits per flush; for benchmarks *)
  (* monotonic anchor of the last checkpoint completed by this process;
     [None] until then (the snapshot may predate the process) *)
  mutable checkpoint_ns : int option;
  (* Replication tail: the framed bytes of recently flushed WAL records,
     seq-ascending, exactly as they hit the file.  Served to replicas by
     {!fetch_since}; survives checkpoints (the file is truncated, the
     buffer is not), so a brief replica stall does not force a resync.
     [repl_floor] is the lowest seq the buffer can serve; a fetch below
     it means the records have been dropped and the replica must
     re-bootstrap from a snapshot.  Guarded by [m]. *)
  repl_tail : (int * string) Queue.t;
  mutable repl_floor : int;
  mutable repl_retention : int;  (* max buffered records *)
  (* Publication hook: called with (graph, last_seq) after each flush
     that published a new committed version — and after a replica
     resync — always {e outside} [m], on the flush leader's thread.
     This is the feed for incremental view maintenance: on a primary it
     fires once per group flush, on a replica once per applied
     replication batch (both go through [flush_group]).  Exceptions are
     swallowed: a consumer bug must not poison commits. *)
  mutable on_publish : (Graph.t -> int -> int -> unit) option;
}

let snapshot_file dir = Filename.concat dir "snapshot.bin"
let wal_file dir = Filename.concat dir "wal.log"

let session t = t.session
let wal_records t = t.tail_records
let last_seq t = t.last_seq

(* The latest committed durable version — a pointer read behind a short
   mutex.  The caller keeps the returned graph (a persistent value) for
   as long as it likes: that is the whole MVCC pinning story. *)
let snapshot t =
  Mutex.lock t.m;
  let g = t.committed in
  Mutex.unlock t.m;
  g

(* The local session's working graph: equal to [snapshot] except inside
   a local transaction, where it shows the uncommitted working state. *)
let graph t = Session.graph t.session

(* The write base: the newest enqueued version.  Only meaningful while
   holding the writer lock (otherwise another writer may move it before
   the caller uses it). *)
let head t =
  Mutex.lock t.m;
  let g = t.head in
  Mutex.unlock t.m;
  g

(* Seconds since the last checkpoint.  Anchored on the monotonic clock
   when this process has checkpointed; otherwise derived from the
   snapshot file's mtime, clamped at >= 0 so an NTP step can never
   report a negative age through [:stats] / the health verb. *)
let snapshot_age t =
  match t.checkpoint_ns with
  | Some ns -> Some (float_of_int (Clock.now_ns () - ns) /. 1e9)
  | None -> (
    match Unix.stat (snapshot_file t.dir) with
    | st -> Some (Float.max 0. (Unix.gettimeofday () -. st.Unix.st_mtime))
    | exception Unix.Unix_error _ -> None)

let set_group_commit t enabled =
  Mutex.lock t.m;
  t.group_limit <- (if enabled then max_int else 1);
  Mutex.unlock t.m

(* --- the single-writer lock ------------------------------------------- *)

let writer_lock t = Mutex.lock t.writer_m
let writer_unlock t = Mutex.unlock t.writer_m

(* --- group commit ------------------------------------------------------ *)

(* Caller holds [writer_m], so tickets are issued in the order versions
   were produced; that order is the WAL append order and the publication
   order. *)
let enqueue_commit t ~graph batch =
  Mutex.lock t.m;
  let ticket = t.next_ticket in
  t.next_ticket <- ticket + 1;
  t.head <- graph;
  t.pending <- { p_ticket = ticket; p_batch = batch; p_graph = graph } :: t.pending;
  Mutex.unlock t.m;
  ticket

(* Flushes [group] (sorted by ticket): one [Wal.append] + fsync for every
   member, then publication of the newest version.  Runs without [m]
   held; returns with it re-taken. *)
let flush_group t group =
  let published = ref None in
  let stmts =
    List.concat_map
      (fun p ->
        List.map
          (fun l -> (l.Session.lg_text, l.Session.lg_params, l.Session.lg_trace))
          p.p_batch)
      group
  in
  let result =
    match Wal.append_encoded t.writer stmts with
    | encoded -> Ok encoded
    | exception e -> Error (Printexc.to_string e)
  in
  (* Commit-lineage spans: each record that belongs to a trace gets a
     durability marker keyed by (trace_id, seq), emitted on the flush
     leader's thread on behalf of the request's trace.  [Trace.note]
     no-ops without a sink or collector. *)
  (match result with
  | Ok encoded ->
    List.iter2
      (fun (seq, _) (_, _, tr) ->
        if tr <> 0 then
          Trace.note
            ~ctx:{ Trace.trace_id = tr; parent_span = 0 }
            ~attrs:[ ("seq", string_of_int seq) ]
            "commit_durable" 0)
      encoded stmts
  | Error _ -> ());
  Mutex.lock t.m;
  (match result with
  | Ok encoded ->
    t.tail_records <- t.tail_records + List.length stmts;
    List.iter
      (fun (seq, framed) ->
        if seq > t.last_seq then t.last_seq <- seq;
        (* the record is durable here (the fsync above succeeded), so it
           is safe to hand to replicas *)
        Queue.add (seq, framed) t.repl_tail)
      encoded;
    while Queue.length t.repl_tail > t.repl_retention do
      let dropped_seq, _ = Queue.pop t.repl_tail in
      t.repl_floor <- dropped_seq + 1
    done;
    (* versions are linear, so the group's newest graph carries every
       member's effects; publishing it publishes them all in order *)
    (match List.rev group with
    | newest :: _ ->
      (* the trace the publication is attributed to: the newest member's
         last traced statement (coalesced members' traces are carried by
         their own per-record lineage spans above) *)
      let trace =
        List.fold_left
          (fun acc l -> if l.Session.lg_trace <> 0 then l.Session.lg_trace else acc)
          0 newest.p_batch
      in
      t.committed <- newest.p_graph;
      published := Some (newest.p_graph, trace)
    | [] -> ());
    Registry.incr m_group_flushes;
    Registry.add m_group_members (List.length group)
  | Error e ->
    (* an fsync that failed leaves durability undecided: report the
       error to every member and refuse all further commits rather than
       acknowledging writes that may not survive a crash *)
    t.failed <-
      List.map (fun p -> (p.p_ticket, e)) group @ t.failed;
    t.poisoned <- Some e);
  let top = List.fold_left (fun acc p -> max acc p.p_ticket) t.flushed group in
  t.flushed <- top;
  Condition.broadcast t.flushed_cv;
  (* Notify the publication hook outside [m] but while still holding
     flush leadership: releasing leadership first would let the next
     leader flush and deliver its hook call ahead of this one, so
     consumers (view refresh, replication fan-out) could observe
     publications out of commit order.  The waiters woken above do not
     depend on the hook — they only check [t.flushed] — so commit
     acknowledgement is not delayed; only the next group's fsync
     serializes behind the hook, which must therefore stay cheap
     (IVM's notify just swaps a target and signals). *)
  (match (t.on_publish, !published) with
  | Some f, Some (g, trace) ->
    let seq = t.last_seq in
    Mutex.unlock t.m;
    (try f g seq trace with _ -> ());
    Mutex.lock t.m
  | _ -> ());
  t.leader <- false;
  Condition.broadcast t.flushed_cv

(* Waits until [ticket] is durable (leading a flush if no leader is
   active), then reports its outcome.  Must be called after releasing
   the writer lock, so the next writer executes while this group syncs. *)
let await_commit t ticket =
  Mutex.lock t.m;
  let rec loop () =
    if t.flushed >= ticket then begin
      let res =
        match List.assoc_opt ticket t.failed with
        | Some e ->
          t.failed <- List.remove_assoc ticket t.failed;
          Error e
        | None -> Ok ()
      in
      Mutex.unlock t.m;
      res
    end
    else if t.leader then begin
      Condition.wait t.flushed_cv t.m;
      loop ()
    end
    else begin
      match t.poisoned with
      | Some e ->
        Mutex.unlock t.m;
        Error e
      | None ->
        t.leader <- true;
        let sorted =
          List.sort (fun a b -> compare a.p_ticket b.p_ticket) t.pending
        in
        (* group_limit = 1 disables grouping (benchmark baseline): the
           leader takes only the oldest pending commit per fsync *)
        let rec take n = function
          | [] -> ([], [])
          | rest when n = 0 -> ([], rest)
          | p :: rest ->
            let g, r = take (n - 1) rest in
            (p :: g, r)
        in
        let group, rest = take t.group_limit sorted in
        t.pending <- rest;
        Mutex.unlock t.m;
        flush_group t group;
        (* m is held again; our ticket may or may not be in the flushed
           range (a bounded group can leave it pending) *)
        loop ()
    end
  in
  loop ()

(* Appends a committed batch and publishes [graph] through the group
   commit queue, serialising with other writers.  This is the local
   session's commit hook; the network server drives [writer_lock] /
   [enqueue_commit] / [await_commit] itself so statement execution and
   the fsync wait are decoupled. *)
let local_commit t batch =
  writer_lock t;
  let ticket = enqueue_commit t ~graph:(Session.graph t.session) batch in
  writer_unlock t;
  match await_commit t ticket with
  | Ok () -> ()
  | Error e -> failwith ("commit failed: " ^ e)

(* Runs a statement through the local session, first syncing it to the
   latest committed version (a no-op unless a server shares the store). *)
let run t text =
  if not (Session.in_transaction t.session) then
    Session.set_graph t.session (snapshot t);
  Session.run t.session text

let ensure_dir dir =
  if Sys.file_exists dir then
    if Sys.is_directory dir then Ok ()
    else Error (dir ^ ": exists and is not a directory")
  else
    match Sys.mkdir dir 0o755 with
    | () -> Ok ()
    | exception Sys_error e -> Error e

let ( let* ) = Result.bind

let open_ ?schema ?mode dir =
  let* () = ensure_dir dir in
  let snap = snapshot_file dir in
  let wal = wal_file dir in
  (* 1. latest snapshot, if any *)
  let* base, snap_seq =
    if Sys.file_exists snap then Snapshot.load_with_seq snap
    else Ok (Graph.empty, 0)
  in
  (* 2. the WAL tail: drop a torn last record, refuse a corrupt interior,
     skip records the snapshot already contains *)
  let* records, next_seq =
    if not (Sys.file_exists wal) then Ok ([], snap_seq + 1)
    else
      let* scan = Wal.scan wal in
      if scan.Wal.torn then Wal.truncate_file wal scan.Wal.valid_len;
      let last_seq =
        List.fold_left (fun acc r -> max acc r.Wal.seq) snap_seq
          scan.Wal.records
      in
      let tail =
        List.filter (fun r -> r.Wal.seq > snap_seq) scan.Wal.records
      in
      Ok (tail, last_seq + 1)
  in
  let* g =
    Trace.with_span "recovery_replay" (fun () ->
        if records <> [] then Registry.incr m_recoveries;
        Wal.replay ?mode base records)
  in
  (* 3. wire the durable session: committed batches go through the group
     commit queue (append + fsync + publish) *)
  let writer = Wal.open_writer ~next_seq wal in
  let store = ref None in
  let on_commit commit =
    match !store with
    | Some t -> local_commit t commit.Session.c_batch
    | None -> ()
  in
  let session = Session.create ?schema ?mode ~on_commit g in
  let t =
    {
      dir;
      writer;
      mode;
      session;
      writer_m = Mutex.create ();
      m = Mutex.create ();
      flushed_cv = Condition.create ();
      committed = g;
      head = g;
      tail_records = List.length records;
      last_seq = next_seq - 1;
      next_ticket = 1;
      flushed = 0;
      pending = [];
      leader = false;
      failed = [];
      poisoned = None;
      group_limit = max_int;
      checkpoint_ns = None;
      repl_tail = Queue.create ();
      repl_floor = next_seq;
      repl_retention = 16_384;
      on_publish = None;
    }
  in
  store := Some t;
  Ok t

(* A checkpoint must capture a (graph, last_seq) pair that agree —
   otherwise the truncate could drop records the snapshot lacks.  Taking
   [writer_m] stops new commits from being enqueued, draining the queue
   makes every issued ticket durable, and then the committed pointer and
   [last_seq] are exactly in step. *)
let checkpoint t =
  if Session.in_transaction t.session then
    Error "checkpoint refused: a transaction is open"
  else begin
    Trace.with_span "checkpoint" @@ fun () ->
    Mutex.lock t.writer_m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.writer_m) @@ fun () ->
    Mutex.lock t.m;
    while t.leader || t.pending <> [] do
      Condition.wait t.flushed_cv t.m
    done;
    let g = t.committed and seq = t.last_seq in
    Mutex.unlock t.m;
    match Snapshot.save ~last_seq:seq g (snapshot_file t.dir) with
    | () ->
      Wal.truncate t.writer;
      Mutex.lock t.m;
      t.tail_records <- 0;
      Mutex.unlock t.m;
      t.checkpoint_ns <- Some (Clock.now_ns ());
      Registry.incr m_checkpoints;
      Ok ()
    | exception Sys_error e -> Error ("checkpoint failed: " ^ e)
    | exception Unix.Unix_error (err, _, _) ->
      Error ("checkpoint failed: " ^ Unix.error_message err)
  end

(* --- replication ------------------------------------------------------ *)

(* A (graph, last_seq) pair that agree: both are read in one critical
   section, and [flush_group] updates them together under the same
   lock, so the seq really is the watermark of the returned version. *)
let committed_with_seq t =
  Mutex.lock t.m;
  let g = t.committed and seq = t.last_seq in
  Mutex.unlock t.m;
  (g, seq)

(* The committed version as wire-ready snapshot bytes.  This is what a
   bootstrapping replica receives; it persists the very same bytes as
   its own snapshot file, so its sequence numbering continues exactly
   where the primary's was at encode time. *)
let encode_committed_snapshot t =
  let g, seq = committed_with_seq t in
  Snapshot.encode ~last_seq:seq g

let set_repl_retention t n =
  Mutex.lock t.m;
  t.repl_retention <- max 1 n;
  while Queue.length t.repl_tail > t.repl_retention do
    let dropped_seq, _ = Queue.pop t.repl_tail in
    t.repl_floor <- dropped_seq + 1
  done;
  Mutex.unlock t.m

type fetch = {
  fr_records : (int * string) list;
      (* (seq, framed bytes), ascending, contiguous *)
  fr_resync : bool;  (* requested seq below the buffer floor *)
  fr_last_seq : int;  (* the primary's current frontier *)
}

(* Records with seq >= [from_seq], at most [max_records] of them, from
   the in-memory replication tail.  A request below the buffer floor
   (records already dropped, or a primary restart that emptied the
   buffer) cannot be served incrementally and flags a resync: the
   replica must re-bootstrap from a snapshot.  [from_seq] past the
   frontier returns an empty, non-resync batch — the caller long-polls. *)
let fetch_since t ~from_seq ~max_records =
  Mutex.lock t.m;
  let res =
    if from_seq > t.last_seq then
      { fr_records = []; fr_resync = false; fr_last_seq = t.last_seq }
    else if from_seq < t.repl_floor then
      { fr_records = []; fr_resync = true; fr_last_seq = t.last_seq }
    else begin
      let taken = ref 0 in
      let acc = ref [] in
      Queue.iter
        (fun (seq, framed) ->
          if seq >= from_seq && !taken < max_records then begin
            acc := (seq, framed) :: !acc;
            incr taken
          end)
        t.repl_tail;
      {
        fr_records = List.rev !acc;
        fr_resync = false;
        fr_last_seq = t.last_seq;
      }
    end
  in
  Mutex.unlock t.m;
  res

(* Applies a fetched batch of primary WAL records on a replica: replay
   through the engine (the recovery path), then commit the whole batch
   as one group — one local WAL append + fsync per fetched batch.  The
   replica's writer assigns sequence numbers starting at its own
   [last_seq + 1]; because the batch is required to start exactly
   there, the records land in the replica's log under the {e same}
   sequence numbers they had on the primary, so [last_seq] on a replica
   {e is} the applied primary seq and a replica restart is ordinary
   recovery. *)
let apply_replicated t records =
  match records with
  | [] -> Ok ()
  | first :: _ ->
    writer_lock t;
    let expect = t.last_seq + 1 in
    if first.Wal.seq <> expect then begin
      writer_unlock t;
      Error
        (Printf.sprintf
           "replicated batch starts at seq %d, replica expects %d"
           first.Wal.seq expect)
    end
    else begin
      match Wal.replay ?mode:t.mode (head t) records with
      | Error e ->
        writer_unlock t;
        Error e
      | Ok g ->
        let batch =
          List.map
            (fun r ->
              {
                Session.lg_text = r.Wal.text;
                lg_params = r.Wal.params;
                lg_trace = r.Wal.trace;
              })
            records
        in
        let ticket = enqueue_commit t ~graph:g batch in
        writer_unlock t;
        let res = await_commit t ticket in
        (match res with
        | Ok () -> Session.set_graph t.session (snapshot t)
        | Error _ -> ());
        res
    end

(* In-place resync from wire snapshot bytes: quiesce writers, drain the
   commit queue, persist the bytes as the local snapshot, drop the
   local WAL, and swap every pointer to the decoded graph.  Equivalent
   to wiping the directory and re-opening, without reopening file
   descriptors or invalidating the [t] other threads hold. *)
let reset_from_snapshot t bytes =
  match Snapshot.decode bytes with
  | Error e -> Error ("resync snapshot rejected: " ^ e)
  | Ok (g, seq) ->
    if Session.in_transaction t.session then
      Error "resync refused: a transaction is open"
    else begin
      Mutex.lock t.writer_m;
      Fun.protect ~finally:(fun () -> Mutex.unlock t.writer_m) @@ fun () ->
      Mutex.lock t.m;
      while t.leader || t.pending <> [] do
        Condition.wait t.flushed_cv t.m
      done;
      Mutex.unlock t.m;
      match Snapshot.save_encoded ~bytes (snapshot_file t.dir) with
      | exception Sys_error e -> Error ("resync failed: " ^ e)
      | exception Unix.Unix_error (err, _, _) ->
        Error ("resync failed: " ^ Unix.error_message err)
      | () ->
        Wal.reset t.writer ~next_seq:(seq + 1);
        Mutex.lock t.m;
        t.committed <- g;
        t.head <- g;
        t.last_seq <- seq;
        t.tail_records <- 0;
        Queue.clear t.repl_tail;
        t.repl_floor <- seq + 1;
        Mutex.unlock t.m;
        Session.set_graph t.session g;
        t.checkpoint_ns <- Some (Clock.now_ns ());
        (match t.on_publish with
        | Some f -> ( try f g seq 0 with _ -> ())
        | None -> ());
        Ok ()
    end

let set_on_publish t f =
  Mutex.lock t.m;
  t.on_publish <- Some f;
  Mutex.unlock t.m

let clear_on_publish t =
  Mutex.lock t.m;
  t.on_publish <- None;
  Mutex.unlock t.m

let close t = Wal.close_writer t.writer
