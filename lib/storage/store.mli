(** The durable store: a directory holding one graph database.

    {v
    <dir>/snapshot.bin   latest checkpointed image ({!Snapshot})
    <dir>/wal.log        committed statements since that image ({!Wal})
    v}

    Opening recovers the database: load the snapshot (if any), scan the
    WAL, drop a torn tail left by a crash, skip records already covered
    by the snapshot's [last_seq] watermark, and re-execute the rest
    through the engine.  A log whose {e interior} is corrupt (CRC
    mismatch on a complete record) refuses to open with a clear error
    rather than silently dropping acknowledged commits.

    The returned handle owns a {!Cypher_session.Session} wired so that
    every committed update statement — auto-commit, or the batch of an
    outermost commit — is appended to the WAL and fsync'd before the
    commit returns.  Rolled-back statements never reach the log.

    {!checkpoint} makes the crash-recovery invariant explicit:

    + write the new snapshot atomically (tmp + rename), carrying the
      sequence number of the last logged record;
    + truncate the WAL back to its header.

    A crash between the two steps is safe: the stale WAL records are at
    or below the snapshot's watermark, so recovery skips them instead
    of applying them twice.  Sequence numbers keep increasing across
    checkpoints and reopens. *)

open Cypher_graph
module Session = Cypher_session.Session

type t

val open_ :
  ?schema:Cypher_schema.Schema.t ->
  ?mode:Cypher_engine.Engine.mode ->
  string ->
  (t, string) result
(** [open_ dir] opens (creating the directory and files if needed) and
    recovers the database.  The error case reports an unreadable or
    corrupt snapshot, a corrupt WAL interior, or a replay failure. *)

val session : t -> Session.t
(** The durable session; run statements through {!Session.run} and
    group them with {!Session.begin_tx} / {!Session.commit}. *)

val graph : t -> Graph.t
(** The current graph — [Session.graph (session t)]. *)

val run : t -> string -> (Cypher_table.Table.t, string) result
(** Convenience for [Session.run (session t)]. *)

val checkpoint : t -> (unit, string) result
(** Snapshots the current graph and truncates the WAL (see above).
    Refused while a transaction is open — the snapshot must only ever
    contain committed state. *)

val wal_records : t -> int
(** Number of committed statements currently in the WAL tail (i.e. not
    yet absorbed by a checkpoint) — observability for tests, the CLI
    and monitoring. *)

val last_seq : t -> int
(** Sequence number of the most recently logged statement (0 for a
    fresh, never-written store). *)

val snapshot_age : t -> float option
(** Seconds since the snapshot file was last written, or [None] if no
    checkpoint has ever completed. *)

val wal_append : t -> Session.logged list -> unit
(** Appends a committed batch to the WAL with one write + fsync and
    advances the [wal_records]/[last_seq] bookkeeping.  The store's own
    session commits through this hook; the network server calls it from
    the [on_commit] of its per-connection sessions, always under the
    store's exclusive write lock. *)

val publish : t -> Graph.t -> unit
(** Publishes [g] as the committed graph visible to {!graph}.  The
    caller must already have made the statements producing [g] durable
    via {!wal_append}; the server does both while holding its write
    lock.  Raises [Invalid_argument] if the store's own session has a
    transaction open. *)

val close : t -> unit
(** Closes the WAL file descriptor.  Deliberately does {e not}
    checkpoint: close must be equivalent to a crash, so that the
    recovery path is the only path. *)

val snapshot_file : string -> string
(** [snapshot_file dir] is the snapshot path inside a store directory. *)

val wal_file : string -> string
