(** The durable store: a directory holding one graph database, served
    under MVCC snapshot reads and WAL group commit.

    {v
    <dir>/snapshot.bin   latest checkpointed image ({!Snapshot})
    <dir>/wal.log        committed statements since that image ({!Wal})
    v}

    Opening recovers the database: load the snapshot (if any), scan the
    WAL, drop a torn tail left by a crash, skip records already covered
    by the snapshot's [last_seq] watermark, and re-execute the rest
    through the engine.  A log whose {e interior} is corrupt (CRC
    mismatch on a complete record) refuses to open with a clear error
    rather than silently dropping acknowledged commits.

    {2 Version lifecycle}

    The graph is a persistent value, so a "version" is simply a graph
    value; the store holds a pointer to the latest {e committed,
    durable} one.  {!snapshot} reads that pointer behind a short mutex —
    that is the entire read-side protocol.  A reader pins a version by
    keeping the returned value; it can never observe a torn or
    in-flight state, never blocks a writer, and is never blocked by
    one.  Old versions are reclaimed by the GC when the last reader
    drops them.

    Writers serialise {e only among themselves}:

    + take {!writer_lock} and build the next version from the latest
      committed one;
    + {!enqueue_commit} the logged batch and the new version — this
      issues a ticket in version order;
    + release {!writer_lock} (the next writer proceeds immediately,
      pipelined ahead of durability);
    + {!await_commit} the ticket: once its group's single fsync
      completes, the version is published for readers and the commit is
      acknowledged.

    {2 Group leader protocol}

    Concurrent committers park their batches in a queue.  The first
    awaiting thread becomes the {e leader}: it drains every pending
    ticket (in order), performs {e one} [Wal.append] + fsync for the
    whole group, publishes the group's newest version (versions are
    linear, so it carries all members' effects), wakes the members, and
    steps down; a member whose ticket is still pending leads the next
    group.  Under a commit burst the fsync cost is shared by the whole
    group — the write-throughput ceiling becomes group-size × the
    single-fsync rate.  A failed append poisons the store: every
    member of the failed group gets the error and later commits are
    refused, because acknowledging a write whose durability is unknown
    is worse than stopping.

    {!checkpoint} makes the crash-recovery invariant explicit:

    + quiesce writers and drain the commit queue, so the committed
      version and [last_seq] agree;
    + write the new snapshot atomically (tmp + rename), carrying the
      sequence number of the last logged record;
    + truncate the WAL back to its header.

    A crash between the last two steps is safe: the stale WAL records
    are at or below the snapshot's watermark, so recovery skips them
    instead of applying them twice.  Sequence numbers keep increasing
    across checkpoints and reopens. *)

open Cypher_graph
module Session = Cypher_session.Session

type t

val open_ :
  ?schema:Cypher_schema.Schema.t ->
  ?mode:Cypher_engine.Engine.mode ->
  string ->
  (t, string) result
(** [open_ dir] opens (creating the directory and files if needed) and
    recovers the database.  The error case reports an unreadable or
    corrupt snapshot, a corrupt WAL interior, or a replay failure. *)

val session : t -> Session.t
(** The local session (the CLI shell and recovery commit through it);
    its committed batches go through the same group-commit queue as
    everyone else's. *)

val snapshot : t -> Graph.t
(** The latest committed durable version — a pointer read behind a
    short mutex.  Keep the value to pin the version; no lock is held
    after return and no unpin is needed. *)

val graph : t -> Graph.t
(** The local session's working graph: equal to {!snapshot} except
    inside a local transaction, where it shows the uncommitted state. *)

val run : t -> string -> (Cypher_table.Table.t, string) result
(** Runs one statement through the local session, first syncing it to
    the latest committed version (unless a local transaction is open). *)

val checkpoint : t -> (unit, string) result
(** Quiesces writers, drains the commit queue, snapshots the committed
    graph and truncates the WAL (see above).  Refused while a local
    transaction is open — the snapshot must only ever contain committed
    state.  Blocks while a wire transaction holds the writer lock. *)

val wal_records : t -> int
(** Number of committed statements currently in the WAL tail (i.e. not
    yet absorbed by a checkpoint) — observability for tests, the CLI
    and monitoring. *)

val last_seq : t -> int
(** Sequence number of the most recently logged statement (0 for a
    fresh, never-written store). *)

val snapshot_age : t -> float option
(** Seconds since the last checkpoint, or [None] if no checkpoint has
    ever completed.  Anchored on the monotonic clock when this process
    has checkpointed; otherwise derived from the snapshot file's mtime
    and clamped at [>= 0.], so a wall-clock (NTP) step can never report
    a negative age. *)

(** {1 The write path}

    The network server drives these directly so that statement
    execution (under the writer lock) and the fsync wait (off it) are
    decoupled — that decoupling is what lets commits group. *)

val writer_lock : t -> unit
(** Serialises writers.  Readers never take this: they use
    {!snapshot}. *)

val writer_unlock : t -> unit

val head : t -> Graph.t
(** The write base: the newest version produced by any writer, which may
    still be waiting in the commit queue.  A writer must build on this —
    building on {!snapshot} would silently drop queued commits' effects.
    Only stable while holding {!writer_lock}; once the queue drains it
    coincides with {!snapshot}. *)

type ticket
(** A commit parked in the group-commit queue. *)

val enqueue_commit : t -> graph:Graph.t -> Session.logged list -> ticket
(** Parks a committed batch and the version it produced.  Must be
    called while holding {!writer_lock}, so tickets are issued in
    version order — the WAL append order and the publication order. *)

val await_commit : t -> ticket -> (unit, string) result
(** Blocks until the ticket's group is flushed (leading the flush if no
    leader is active) and returns its outcome.  Call {e after}
    releasing {!writer_lock}.  [Ok ()] means the batch is fsync'd and
    its version published to {!snapshot}; [Error _] means the append
    failed and nothing of the group was published. *)

val set_group_commit : t -> bool -> unit
(** Benchmarks only: [false] caps flush groups at one commit each, the
    one-fsync-per-commit baseline; [true] (the default) restores
    unbounded grouping. *)

(** {1 Replication}

    A primary serves these to replicas; a replica applies through them.
    The stream unit is the {e framed WAL record} — the very bytes that
    landed in the primary's log, CRC included — so replicas re-verify
    integrity with the same checks file recovery uses.

    Sequence alignment invariant: a replica bootstraps by persisting
    the primary's snapshot bytes as its own snapshot, so its local
    sequence numbering continues exactly where the primary's was.
    {!apply_replicated} then requires each batch to start at the
    replica's [last_seq + 1] and re-logs the records locally under the
    same numbers.  Consequences: {!last_seq} on a replica {e is} the
    applied primary sequence number, and a replica restart is ordinary
    crash recovery — no replication-specific persistent state exists. *)

val committed_with_seq : t -> Graph.t * int
(** The committed version together with its WAL watermark, read in one
    critical section so the pair agrees. *)

val encode_committed_snapshot : t -> string
(** The committed version as wire-ready snapshot bytes
    ({!Snapshot.encode} of {!committed_with_seq}) — what a
    bootstrapping replica receives and persists verbatim. *)

type fetch = {
  fr_records : (int * string) list;
      (** [(seq, framed bytes)], ascending and contiguous *)
  fr_resync : bool;
      (** the requested seq is below the buffer floor: the records are
          gone and the replica must re-bootstrap from a snapshot *)
  fr_last_seq : int;  (** the primary's current frontier *)
}

val fetch_since : t -> from_seq:int -> max_records:int -> fetch
(** Buffered records with seq >= [from_seq], at most [max_records].  A
    request past the frontier returns an empty non-resync batch (the
    caller long-polls); a request below the floor flags [fr_resync].
    The buffer survives checkpoints (the WAL file is truncated, the
    buffer is not), so a brief replica stall does not force a resync. *)

val set_repl_retention : t -> int -> unit
(** Caps the replication buffer at [n] records (default 16384),
    evicting oldest-first and raising the floor.  Tests use a tiny cap
    to exercise the resync path. *)

val apply_replicated : t -> Wal.record list -> (unit, string) result
(** Replica side: re-executes a fetched batch through the engine (the
    recovery replay path) and commits it as {e one} group — one local
    WAL append + fsync per batch.  The batch must start exactly at this
    store's [last_seq + 1] (decoded, gap-free records are the caller's
    contract); on success the records are durable locally under their
    primary sequence numbers and the new version is published. *)

val reset_from_snapshot : t -> string -> (unit, string) result
(** Replica side, in-place resync: verifies and decodes wire snapshot
    bytes, quiesces writers, drains the commit queue, persists the
    bytes as the local snapshot, drops the local WAL, and swaps the
    committed/head pointers and [last_seq] to the decoded image.
    Equivalent to wiping the directory and re-opening, without
    invalidating the handle other threads hold. *)

(** {1 Publication hook}

    The feed for incremental view maintenance ({!module:Cypher_ivm}): a
    single consumer notified of every newly published committed
    version. *)

val set_on_publish : t -> (Graph.t -> int -> int -> unit) -> unit
(** Registers the publication hook, replacing any previous one.  It is
    called with [(graph, last_seq, trace)] after every flush that
    published a new committed version — [trace] is the trace id of the
    newest flushed commit (0 when untraced, e.g. after a snapshot
    resync), letting view refresh attribute its work to the write that
    triggered it — on a primary once per group flush, on a
    replica once per applied replication batch and after a snapshot
    resync — always outside the store's internal locks, on the flush
    leader's thread.  The hook must be fast and must not commit through
    this store on the calling thread; exceptions are swallowed.
    Consumers needing asynchrony (view refresh does) should only record
    the target and wake their own worker. *)

val clear_on_publish : t -> unit

val close : t -> unit
(** Closes the WAL file descriptor.  Deliberately does {e not}
    checkpoint: close must be equivalent to a crash, so that the
    recovery path is the only path. *)

val snapshot_file : string -> string
(** [snapshot_file dir] is the snapshot path inside a store directory. *)

val wal_file : string -> string
