(** The write-ahead statement log.

    The WAL is an append-only file of committed update statements; it
    is what makes a commit durable before the next checkpoint rewrites
    the snapshot.  Each record carries the statement text and the
    parameter bindings it ran with (encoded with {!Codec}), plus a
    monotonically increasing sequence number that ties the log to the
    snapshot's [last_seq] watermark.

    File layout:

    {v
    "CYWAL" · version u16-LE                    7-byte header
    record*                                     append-only
    record := len u32-LE · crc32(payload) u32-LE · payload
    payload := seq uvarint · text string · nparams uvarint
               · (key string · value)* · trace uvarint
    v}

    The trailing [trace] uvarint (the originating request's trace id, 0
    when untraced) is new in version 2; version-1 files, whose payloads
    end at the last parameter, are still readable — an exhausted payload
    decodes as trace 0.

    Recovery semantics of {!scan}:

    - a record whose bytes are complete and whose CRC matches is valid;
    - an {e incomplete} record at the end of the file (the log was cut
      mid-write by a crash) is a {e torn tail}: scanning stops at the
      last valid record and reports [torn = true] with the byte offset
      to truncate to;
    - a {e complete} record whose CRC does not match is corruption, not
      a crash artefact, and the whole scan is refused with an error —
      silently dropping acknowledged commits is worse than failing
      loudly. *)

open Cypher_values

type record = {
  seq : int;  (** strictly increasing, 1-based across the store's life *)
  text : string;  (** the committed update statement, verbatim *)
  params : (string * Value.t) list;  (** the [$param] bindings it ran with *)
  trace : int;
      (** trace id of the request that committed the statement; 0 when
          the commit was untraced or the record predates version 2 *)
}

(** {1 Appending} *)

type writer

val open_writer : ?next_seq:int -> string -> writer
(** Opens (creating if necessary) the log for appending.  [next_seq]
    (default 1) is the sequence number the next record will get; pass
    [last valid seq + 1] when reopening an existing log.  Raises
    [Failure] if the file exists but does not start with a WAL header. *)

val append : writer -> (string * (string * Value.t) list * int) list -> int
(** Appends one record per statement — a single [write] followed by a
    single [fsync], so a multi-statement transaction reaches the disk
    as one batch.  Returns the sequence number of the last record
    written (0 if the batch was empty, which performs no I/O). *)

val append_encoded :
  writer ->
  (string * (string * Value.t) list * int) list ->
  (int * string) list
(** Like {!append}, but returns each record's [(seq, framed bytes)] —
    the framed form is byte-identical to what was written to the file
    (len · crc · payload), so a primary can ship the very same
    CRC-guarded bytes to replicas. *)

val truncate : writer -> unit
(** Cuts the log back to the bare header (checkpoint), with an fsync.
    Sequence numbers keep increasing: the snapshot's [last_seq]
    watermark, not file position, decides what replay skips. *)

val reset : writer -> next_seq:int -> unit
(** {!truncate} and restart the sequence at [next_seq] — a replica that
    resyncs from a fresh snapshot drops its whole log and continues
    from the snapshot's watermark. *)

val close_writer : writer -> unit

(** {1 Recovery} *)

type scan = {
  records : record list;  (** the valid prefix, in append order *)
  valid_len : int;  (** file offset just past the last valid record *)
  torn : bool;  (** an incomplete record was cut off at [valid_len] *)
}

val scan : string -> (scan, string) result
(** Reads the valid prefix of the log (see recovery semantics above). *)

val decode_framed : string -> (record, string) result
(** Decodes one framed record (len · crc · payload) as shipped over the
    replication stream, applying the same integrity checks as the file
    scan: a truncated, oversized or checksum-failing frame is an
    [Error], never a silently skipped record. *)

val truncate_file : string -> int -> unit
(** Truncates the file to [len] bytes — used to drop a torn tail before
    reopening the log for appending. *)

val replay :
  ?mode:Cypher_engine.Engine.mode ->
  Cypher_graph.Graph.t ->
  record list ->
  (Cypher_graph.Graph.t, string) result
(** Re-executes each record through the engine with its original
    parameter bindings, threading the graph.  A record that fails to
    execute stops the replay with a diagnostic naming the sequence
    number — records were committed once, so failure here means the
    log and snapshot disagree. *)
