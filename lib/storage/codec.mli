(** Versioned binary codec for the Cypher value domain [V].

    One encoding serves every durable artefact: snapshot bodies, WAL
    record payloads, and parameter bindings.  The format is
    tag-prefixed and self-delimiting:

    - integers are zig-zag varints (small magnitudes take one byte);
    - floats are the raw IEEE-754 bits, little-endian, so NaN payloads,
      infinities and signed zeros round-trip exactly;
    - strings are a length varint followed by the bytes;
    - lists, maps and paths are a count followed by their elements;
    - temporal values carry their plain integer fields (days, nanos,
      offsets) so no calendar logic is needed to decode them;
    - node and relationship values store the raw identifier, which is
      what lets a reloaded snapshot rebuild paths and indexes against
      the very same ids.

    Readers never trust the input: every decoding error raises
    {!Corrupt}, which the snapshot and WAL layers turn into a clean
    [(_, string) result]. *)

open Cypher_values

val format_version : int
(** Bumped on any incompatible change to the encoding. *)

exception Corrupt of string
(** Raised by all [read_*] functions on malformed input (truncated
    buffer, unknown tag, overlong varint). *)

type reader
(** A cursor over an immutable byte string. *)

val reader : ?pos:int -> string -> reader
val pos : reader -> int
val remaining : reader -> int

(** {1 Primitives} *)

val write_uvarint : Buffer.t -> int -> unit
(** Unsigned LEB128; the argument must be non-negative. *)

val read_uvarint : reader -> int

val write_int : Buffer.t -> int -> unit
(** Zig-zag varint: any native int, negative included. *)

val read_int : reader -> int
val write_int64 : Buffer.t -> int64 -> unit
(** Fixed eight bytes, little-endian. *)

val read_int64 : reader -> int64
val write_float : Buffer.t -> float -> unit
val read_float : reader -> float
val write_string : Buffer.t -> string -> unit
val read_string : reader -> string
val write_bool : Buffer.t -> bool -> unit
val read_bool : reader -> bool

(** {1 Values} *)

val write_value : Buffer.t -> Value.t -> unit
val read_value : reader -> Value.t

val encode_value : Value.t -> string
(** Standalone encoding of one value (no version header). *)

val decode_value : string -> (Value.t, string) result
(** Inverse of {!encode_value}; rejects trailing garbage. *)
