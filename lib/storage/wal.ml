open Cypher_values
module Engine = Cypher_engine.Engine
module Config = Cypher_semantics.Config
module Registry = Cypher_obs.Registry
module Trace = Cypher_obs.Trace

let m_appends =
  Registry.counter ~help:"WAL append batches (one fsync each)"
    "cypher_storage_wal_appends_total"

let m_records =
  Registry.counter ~help:"statements appended to the WAL"
    "cypher_storage_wal_records_total"

let m_fsync =
  Registry.histogram ~help:"WAL fsync latency (microsecond buckets)"
    "cypher_storage_wal_fsync_latency"

let m_replayed =
  Registry.counter ~help:"WAL records re-executed during recovery"
    "cypher_storage_recovery_replayed_total"

let magic = "CYWAL"

(* Version 2 appends the originating request's trace id to each record
   payload (a trailing uvarint).  Version-1 files — no trailing bytes —
   are still readable: the decoder treats an exhausted payload as trace
   0, so recovery from a pre-upgrade log just works. *)
let version = 2
let header_len = String.length magic + 2

let header_for v =
  let buf = Buffer.create header_len in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.contents buf

let header = header_for version
let header_v1 = header_for 1

type record = {
  seq : int;
  text : string;
  params : (string * Value.t) list;
  trace : int;
}

(* --- appending ------------------------------------------------------- *)

type writer = { fd : Unix.file_descr; mutable next_seq : int }

let write_all fd data =
  let len = String.length data in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write_substring fd data !written (len - !written)
  done

let open_writer ?(next_seq = 1) path =
  let exists = Sys.file_exists path && (Unix.stat path).Unix.st_size > 0 in
  if exists then begin
    let head =
      In_channel.with_open_bin path (fun ic ->
          really_input_string ic (min header_len (Int64.to_int (In_channel.length ic))))
    in
    if head <> header && head <> header_v1 then
      failwith (path ^ ": not a WAL file (bad or unsupported header)")
  end;
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  if not exists then begin
    write_all fd header;
    Unix.fsync fd
  end;
  { fd; next_seq }

let encode_record ~seq (text, params, trace) =
  let payload = Buffer.create (64 + String.length text) in
  Codec.write_uvarint payload seq;
  Codec.write_string payload text;
  Codec.write_uvarint payload (List.length params);
  List.iter
    (fun (k, v) ->
      Codec.write_string payload k;
      Codec.write_value payload v)
    params;
  Codec.write_uvarint payload trace;
  let payload = Buffer.contents payload in
  let framed = Buffer.create (String.length payload + 8) in
  let u32 n =
    for i = 0 to 3 do
      Buffer.add_char framed (Char.chr ((n lsr (8 * i)) land 0xFF))
    done
  in
  u32 (String.length payload);
  u32 (Crc32.digest payload);
  Buffer.add_string framed payload;
  Buffer.contents framed

(* Appends and returns each record's (seq, framed bytes) — the framed
   form is exactly what lands in the file, so a primary can ship the
   same CRC-guarded bytes to replicas and a replica can re-verify them
   with the file-recovery checks. *)
let append_encoded w stmts =
  match stmts with
  | [] -> []
  | _ ->
    Trace.with_span "wal_append" @@ fun () ->
    let buf = Buffer.create 256 in
    let encoded =
      List.map
        (fun stmt ->
          let seq = w.next_seq in
          let framed = encode_record ~seq stmt in
          Buffer.add_string buf framed;
          w.next_seq <- w.next_seq + 1;
          (seq, framed))
        stmts
    in
    write_all w.fd (Buffer.contents buf);
    let t0 = Trace.now_us () in
    Trace.with_span "fsync" (fun () -> Unix.fsync w.fd);
    Registry.observe_us m_fsync (Trace.now_us () - t0);
    Registry.incr m_appends;
    Registry.add m_records (List.length stmts);
    encoded

let append w stmts =
  match append_encoded w stmts with
  | [] -> 0
  | encoded -> fst (List.nth encoded (List.length encoded - 1))

let truncate w =
  Unix.ftruncate w.fd header_len;
  Unix.fsync w.fd

(* Truncate and restart the sequence — a replica resyncing from a fresh
   snapshot drops its whole log and continues at the snapshot's seq. *)
let reset w ~next_seq =
  truncate w;
  w.next_seq <- next_seq

let close_writer w = Unix.close w.fd

(* --- recovery -------------------------------------------------------- *)

type scan = { records : record list; valid_len : int; torn : bool }

let truncate_file path len = Unix.truncate path len

let decode_payload payload =
  let r = Codec.reader payload in
  let seq = Codec.read_uvarint r in
  let text = Codec.read_string r in
  let nparams = Codec.read_uvarint r in
  let params =
    List.init nparams (fun _ ->
        let k = Codec.read_string r in
        (k, Codec.read_value r))
  in
  (* version-1 records end here; version 2 carries the trace id *)
  let trace = if Codec.remaining r > 0 then Codec.read_uvarint r else 0 in
  if Codec.remaining r <> 0 then
    raise (Codec.Corrupt "trailing bytes in WAL record payload");
  { seq; text; params; trace }

(* One framed record (len · crc · payload) as shipped over the
   replication stream, verified with the same checks the file scan
   applies: a short, oversized or checksum-failing frame is an error,
   never a silently skipped record. *)
let decode_framed data =
  let len = String.length data in
  if len < 8 then Error "framed WAL record shorter than its prologue"
  else begin
    let u32 pos =
      let b i = Char.code data.[pos + i] in
      b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
    in
    let payload_len = u32 0 in
    let crc = u32 4 in
    if len - 8 <> payload_len then
      Error
        (Printf.sprintf
           "framed WAL record length mismatch (prologue says %d, frame \
            carries %d)"
           payload_len (len - 8))
    else if Crc32.digest_sub data ~pos:8 ~len:payload_len <> crc then
      Error "framed WAL record checksum mismatch"
    else
      match decode_payload (String.sub data 8 payload_len) with
      | record -> Ok record
      | exception Codec.Corrupt msg -> Error ("framed WAL record: " ^ msg)
  end

let scan path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | data ->
    let len = String.length data in
    if
      len < header_len
      || (String.sub data 0 header_len <> header
         && String.sub data 0 header_len <> header_v1)
    then Error (path ^ ": not a WAL file (bad or unsupported header)")
    else begin
      let u32 pos =
        let b i = Char.code data.[pos + i] in
        b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
      in
      let rec go pos acc =
        if pos = len then Ok { records = List.rev acc; valid_len = pos; torn = false }
        else if len - pos < 8 then
          (* crash cut the length/crc prologue short *)
          Ok { records = List.rev acc; valid_len = pos; torn = true }
        else begin
          let payload_len = u32 pos in
          let crc = u32 (pos + 4) in
          if len - pos - 8 < payload_len then
            (* crash cut the payload short *)
            Ok { records = List.rev acc; valid_len = pos; torn = true }
          else if Crc32.digest_sub data ~pos:(pos + 8) ~len:payload_len <> crc
          then
            Error
              (Printf.sprintf
                 "%s: corrupt WAL record at offset %d (checksum mismatch on a \
                  complete record); refusing to recover past committed data"
                 path pos)
          else
            match decode_payload (String.sub data (pos + 8) payload_len) with
            | record -> go (pos + 8 + payload_len) (record :: acc)
            | exception Codec.Corrupt msg ->
              Error
                (Printf.sprintf "%s: corrupt WAL record at offset %d: %s" path
                   pos msg)
        end
      in
      go header_len []
    end

let replay ?(mode = Engine.Planned) g records =
  List.fold_left
    (fun acc record ->
      match acc with
      | Error _ as e -> e
      | Ok g -> (
        let config = Config.with_params record.params Config.default in
        match Engine.query ~config ~mode g record.text with
        | Ok outcome ->
          Registry.incr m_replayed;
          Ok outcome.Engine.graph
        | Error e ->
          Error
            (Printf.sprintf "WAL replay failed at record %d (%s): %s"
               record.seq record.text e)))
    (Ok g) records
