(** Binary whole-graph snapshots.

    A snapshot is the durable image of one property graph: every node
    and relationship under its original identifier, all labels, types
    and properties, the set of (label, key) property indexes, the id
    allocation watermarks, and the WAL sequence number up to which the
    image is current.

    File layout:

    {v
    "CYSNAP" · version u16-LE      8-byte magic
    body                           Codec-encoded, see below
    crc32(body)                    4 bytes LE
    v}

    The body is: [last_seq], [next_node], [next_rel], the nodes in
    ascending id order (id, labels, properties), the relationships in
    ascending id order (id, src, tgt, type, properties), and the index
    descriptors.  Identifiers are preserved exactly, so paths stored in
    WAL parameters and property indexes rebuild against the same ids,
    and [save] followed by [load] is an isomorphism that is the
    identity on ids.

    [save] is atomic: the image is written to a temporary sibling,
    fsync'd, and renamed over the target, so a crash mid-save leaves
    the previous snapshot intact. *)

open Cypher_graph

val save : ?last_seq:int -> Graph.t -> string -> unit
(** [save g path] writes the snapshot.  [last_seq] (default 0) is the
    sequence number of the last WAL record already reflected in [g];
    recovery skips WAL records at or below it.  Raises [Sys_error] /
    [Unix.Unix_error] on I/O failure. *)

val load : string -> (Graph.t, string) result
(** Rebuilds the graph.  The result is a fresh value with a bumped
    {!Graph.version} (cached plans replan) and allocation counters at
    least as high as when the snapshot was taken. *)

val load_with_seq : string -> (Graph.t * int, string) result
(** Like {!load}, also returning the stored [last_seq]. *)

(** {1 In-memory form}

    Replication bootstrap ships a snapshot over the wire instead of
    through a file: the primary encodes its committed version to bytes,
    the replica decodes (or persists) the very same bytes.  The encoded
    form is byte-identical to the file form, CRC included. *)

val encode : ?last_seq:int -> Graph.t -> string
(** The full snapshot image (magic · body · crc) as a string. *)

val decode : string -> (Graph.t * int, string) result
(** Decodes {!encode}'s output, verifying magic, version and CRC. *)

val save_encoded : bytes:string -> string -> unit
(** [save_encoded ~bytes path] writes already-encoded snapshot bytes
    with the same atomicity as {!save} (tmp · fsync · rename) — used by
    a replica to persist a snapshot it fetched from the primary. *)
