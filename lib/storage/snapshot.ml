open Cypher_graph
open Cypher_values
module Registry = Cypher_obs.Registry
module Trace = Cypher_obs.Trace

let m_save =
  Registry.histogram
    ~help:"snapshot encode+write+fsync duration (microsecond buckets)"
    "cypher_storage_snapshot_save_duration"

let m_load =
  Registry.histogram
    ~help:"snapshot read+decode duration (microsecond buckets)"
    "cypher_storage_snapshot_load_duration"

let timed hist f =
  let t0 = Trace.now_us () in
  Fun.protect
    ~finally:(fun () -> Registry.observe_us hist (Trace.now_us () - t0))
    f

let magic = "CYSNAP"
let version = 1

(* --- low-level file helpers ------------------------------------------ *)

let fsync_dir dir =
  (* Persist the rename itself.  Not every filesystem supports fsync on a
     directory fd; failure to do so only weakens crash-atomicity, so it
     is ignored rather than fatal. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd

let write_file_atomic path data =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let len = String.length data in
      let written = ref 0 in
      while !written < len do
        written :=
          !written + Unix.write_substring fd data !written (len - !written)
      done;
      Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

(* --- encoding -------------------------------------------------------- *)

let write_props buf props =
  Codec.write_uvarint buf (Value.Smap.cardinal props);
  Value.Smap.iter
    (fun k v ->
      Codec.write_string buf k;
      Codec.write_value buf v)
    props

let read_props r =
  let n = Codec.read_uvarint r in
  let props = ref Value.Smap.empty in
  for _ = 1 to n do
    let k = Codec.read_string r in
    props := Value.Smap.add k (Codec.read_value r) !props
  done;
  !props

let encode ?(last_seq = 0) g =
  let buf = Buffer.create (4096 + (64 * Graph.node_count g)) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr (version land 0xFF));
  Buffer.add_char buf (Char.chr ((version lsr 8) land 0xFF));
  let body = Buffer.create (4096 + (64 * Graph.node_count g)) in
  Codec.write_uvarint body last_seq;
  let next_node, next_rel = Graph.next_ids g in
  Codec.write_uvarint body next_node;
  Codec.write_uvarint body next_rel;
  let nodes = Graph.nodes g in
  Codec.write_uvarint body (List.length nodes);
  List.iter
    (fun n ->
      let d = Graph.node_data g n in
      Codec.write_uvarint body (Ids.node_to_int n);
      Codec.write_uvarint body (Graph.Sset.cardinal d.Graph.labels);
      Graph.Sset.iter (Codec.write_string body) d.Graph.labels;
      write_props body d.Graph.node_props)
    nodes;
  let rels = Graph.rels g in
  Codec.write_uvarint body (List.length rels);
  List.iter
    (fun r ->
      let d = Graph.rel_data g r in
      Codec.write_uvarint body (Ids.rel_to_int r);
      Codec.write_uvarint body (Ids.node_to_int d.Graph.src);
      Codec.write_uvarint body (Ids.node_to_int d.Graph.tgt);
      Codec.write_string body d.Graph.rel_type;
      write_props body d.Graph.rel_props)
    rels;
  let indexes = Graph.indexes g in
  Codec.write_uvarint body (List.length indexes);
  List.iter
    (fun (label, key) ->
      Codec.write_string body label;
      Codec.write_string body key)
    indexes;
  let body = Buffer.contents body in
  Buffer.add_string buf body;
  let crc = Crc32.digest body in
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((crc lsr (8 * i)) land 0xFF))
  done;
  Buffer.contents buf

let save ?last_seq g path =
  Trace.with_span "snapshot_save" (fun () ->
      timed m_save (fun () -> write_file_atomic path (encode ?last_seq g)))

(* --- decoding -------------------------------------------------------- *)

let decode data =
  let header_len = String.length magic + 2 in
  if String.length data < header_len + 4 then Error "snapshot file too short"
  else if String.sub data 0 (String.length magic) <> magic then
    Error "not a snapshot file (bad magic)"
  else begin
    let ver =
      Char.code data.[String.length magic]
      lor (Char.code data.[String.length magic + 1] lsl 8)
    in
    if ver <> version then
      Error
        (Printf.sprintf "unsupported snapshot version %d (expected %d)" ver
           version)
    else begin
      let body_len = String.length data - header_len - 4 in
      let stored_crc =
        let b i = Char.code data.[header_len + body_len + i] in
        b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
      in
      let actual_crc = Crc32.digest_sub data ~pos:header_len ~len:body_len in
      if stored_crc <> actual_crc then
        Error
          (Printf.sprintf
             "snapshot checksum mismatch (stored %08x, computed %08x): file \
              is corrupt"
             stored_crc actual_crc)
      else
        match
          let r = Codec.reader ~pos:header_len data in
          let last_seq = Codec.read_uvarint r in
          let next_node = Codec.read_uvarint r in
          let next_rel = Codec.read_uvarint r in
          let g = ref Graph.empty in
          let n_nodes = Codec.read_uvarint r in
          for _ = 1 to n_nodes do
            let id = Ids.node_of_int (Codec.read_uvarint r) in
            let n_labels = Codec.read_uvarint r in
            let labels = ref Graph.Sset.empty in
            for _ = 1 to n_labels do
              labels := Graph.Sset.add (Codec.read_string r) !labels
            done;
            let node_props = read_props r in
            g := Graph.insert_node !g id { Graph.labels = !labels; node_props }
          done;
          let n_rels = Codec.read_uvarint r in
          for _ = 1 to n_rels do
            let id = Ids.rel_of_int (Codec.read_uvarint r) in
            let src = Ids.node_of_int (Codec.read_uvarint r) in
            let tgt = Ids.node_of_int (Codec.read_uvarint r) in
            let rel_type = Codec.read_string r in
            let rel_props = read_props r in
            g := Graph.insert_rel !g id { Graph.src; tgt; rel_type; rel_props }
          done;
          let n_indexes = Codec.read_uvarint r in
          for _ = 1 to n_indexes do
            let label = Codec.read_string r in
            let key = Codec.read_string r in
            g := Graph.create_index !g ~label ~key
          done;
          (Graph.reserve_ids !g ~next_node ~next_rel, last_seq)
        with
        | result -> Ok result
        | exception Codec.Corrupt msg -> Error ("snapshot decode: " ^ msg)
        | exception Invalid_argument msg -> Error ("snapshot decode: " ^ msg)
    end
  end

let load_with_seq path =
  Trace.with_span "snapshot_load" (fun () ->
      timed m_load (fun () ->
          match read_file path with
          | exception Sys_error e -> Error e
          | data -> decode data))

let load path = Result.map fst (load_with_seq path)

let save_encoded ~bytes path = write_file_atomic path bytes
