(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding
    every snapshot body and WAL record against bit rot and torn writes.

    The checksum is returned as a non-negative [int] in the range
    [0, 2^32).  Incremental use: feed the previous digest back in via
    [?crc] to checksum a sequence of fragments. *)

val digest : ?crc:int -> string -> int
(** [digest s] is the CRC-32 of the whole string. *)

val digest_sub : ?crc:int -> string -> pos:int -> len:int -> int
(** Checksum of the substring [s.[pos .. pos+len-1]].  Raises
    [Invalid_argument] when the range is out of bounds. *)
