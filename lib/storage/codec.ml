open Cypher_values

let format_version = 1

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

type reader = { buf : string; mutable pos : int }

let reader ?(pos = 0) buf = { buf; pos }
let pos r = r.pos
let remaining r = String.length r.buf - r.pos

let read_byte r =
  if r.pos >= String.length r.buf then corrupt "unexpected end of input";
  let b = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  b

(* --- primitives ------------------------------------------------------ *)

(* Unsigned LEB128 over the native int's bit pattern.  [lsr] shifts in
   zeros regardless of sign, so the loop terminates for any pattern; a
   63-bit int takes at most 9 bytes. *)
let write_uvarint buf n =
  let rec go n =
    if n land lnot 0x7F = 0 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (n land 0x7F lor 0x80));
      go (n lsr 7)
    end
  in
  go n

let read_uvarint r =
  let rec go shift acc =
    if shift > 63 then corrupt "overlong varint";
    let b = read_byte r in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

(* Zig-zag: small magnitudes of either sign encode short. *)
let write_int buf n = write_uvarint buf ((n lsl 1) lxor (n asr 62))

let read_int r =
  let u = read_uvarint r in
  (u lsr 1) lxor (-(u land 1))

let write_int64 buf x =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical x (8 * i)) land 0xFF))
  done

let read_int64 r =
  let x = ref 0L in
  for i = 0 to 7 do
    let b = read_byte r in
    x := Int64.logor !x (Int64.shift_left (Int64.of_int b) (8 * i))
  done;
  !x

let write_float buf f = write_int64 buf (Int64.bits_of_float f)
let read_float r = Int64.float_of_bits (read_int64 r)

let write_string buf s =
  write_uvarint buf (String.length s);
  Buffer.add_string buf s

let read_string r =
  let n = read_uvarint r in
  if n < 0 || n > remaining r then corrupt "string length %d exceeds input" n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let write_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

let read_bool r =
  match read_byte r with
  | 0 -> false
  | 1 -> true
  | b -> corrupt "invalid boolean byte 0x%02x" b

(* --- values ---------------------------------------------------------- *)

(* Tags are part of the on-disk format: never renumber, only append. *)
let tag_null = 0
and tag_false = 1
and tag_true = 2
and tag_int = 3
and tag_float = 4
and tag_string = 5
and tag_list = 6
and tag_map = 7
and tag_node = 8
and tag_rel = 9
and tag_path = 10
and tag_date = 11
and tag_local_time = 12
and tag_time = 13
and tag_local_datetime = 14
and tag_datetime = 15
and tag_duration = 16

let rec write_value buf (v : Value.t) =
  let tag t = Buffer.add_char buf (Char.chr t) in
  match v with
  | Null -> tag tag_null
  | Bool false -> tag tag_false
  | Bool true -> tag tag_true
  | Int n ->
    tag tag_int;
    write_int buf n
  | Float f ->
    tag tag_float;
    write_float buf f
  | String s ->
    tag tag_string;
    write_string buf s
  | List vs ->
    tag tag_list;
    write_uvarint buf (List.length vs);
    List.iter (write_value buf) vs
  | Map m ->
    tag tag_map;
    write_uvarint buf (Value.Smap.cardinal m);
    Value.Smap.iter
      (fun k v ->
        write_string buf k;
        write_value buf v)
      m
  | Node n ->
    tag tag_node;
    write_uvarint buf (Ids.node_to_int n)
  | Rel r ->
    tag tag_rel;
    write_uvarint buf (Ids.rel_to_int r)
  | Path p ->
    tag tag_path;
    write_uvarint buf (Ids.node_to_int p.path_start);
    write_uvarint buf (List.length p.path_steps);
    List.iter
      (fun (r, n) ->
        write_uvarint buf (Ids.rel_to_int r);
        write_uvarint buf (Ids.node_to_int n))
      p.path_steps
  | Temporal (Date d) ->
    tag tag_date;
    write_int buf d
  | Temporal (Local_time ns) ->
    tag tag_local_time;
    write_int64 buf ns
  | Temporal (Time (ns, off)) ->
    tag tag_time;
    write_int64 buf ns;
    write_int buf off
  | Temporal (Local_datetime (d, ns)) ->
    tag tag_local_datetime;
    write_int buf d;
    write_int64 buf ns
  | Temporal (Datetime (d, ns, off)) ->
    tag tag_datetime;
    write_int buf d;
    write_int64 buf ns;
    write_int buf off
  | Temporal (Duration { months; days; nanos }) ->
    tag tag_duration;
    write_int buf months;
    write_int buf days;
    write_int64 buf nanos

let rec read_value r : Value.t =
  let t = read_byte r in
  if t = tag_null then Null
  else if t = tag_false then Bool false
  else if t = tag_true then Bool true
  else if t = tag_int then Int (read_int r)
  else if t = tag_float then Float (read_float r)
  else if t = tag_string then String (read_string r)
  else if t = tag_list then begin
    let n = read_uvarint r in
    if n > remaining r then corrupt "list length %d exceeds input" n;
    List (List.init n (fun _ -> read_value r))
  end
  else if t = tag_map then begin
    let n = read_uvarint r in
    if n > remaining r then corrupt "map length %d exceeds input" n;
    let m = ref Value.Smap.empty in
    for _ = 1 to n do
      let k = read_string r in
      m := Value.Smap.add k (read_value r) !m
    done;
    Map !m
  end
  else if t = tag_node then Node (Ids.node_of_int (read_uvarint r))
  else if t = tag_rel then Rel (Ids.rel_of_int (read_uvarint r))
  else if t = tag_path then begin
    let path_start = Ids.node_of_int (read_uvarint r) in
    let n = read_uvarint r in
    if n > remaining r then corrupt "path length %d exceeds input" n;
    let path_steps =
      List.init n (fun _ ->
          let rel = Ids.rel_of_int (read_uvarint r) in
          (rel, Ids.node_of_int (read_uvarint r)))
    in
    Path { path_start; path_steps }
  end
  else if t = tag_date then Temporal (Date (read_int r))
  else if t = tag_local_time then Temporal (Local_time (read_int64 r))
  else if t = tag_time then
    let ns = read_int64 r in
    Temporal (Time (ns, read_int r))
  else if t = tag_local_datetime then
    let d = read_int r in
    Temporal (Local_datetime (d, read_int64 r))
  else if t = tag_datetime then begin
    let d = read_int r in
    let ns = read_int64 r in
    Temporal (Datetime (d, ns, read_int r))
  end
  else if t = tag_duration then begin
    let months = read_int r in
    let days = read_int r in
    Temporal (Duration { months; days; nanos = read_int64 r })
  end
  else corrupt "unknown value tag 0x%02x" t

let encode_value v =
  let buf = Buffer.create 64 in
  write_value buf v;
  Buffer.contents buf

let decode_value s =
  match
    let r = reader s in
    let v = read_value r in
    if remaining r <> 0 then corrupt "%d trailing bytes after value" (remaining r);
    v
  with
  | v -> Ok v
  | exception Corrupt msg -> Error msg
