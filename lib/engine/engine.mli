(** The query engine façade: parse, plan, execute.

    Two execution modes are provided:

    - [Reference] evaluates queries by a direct transcription of the
      paper's denotational semantics (Sections 4.2–4.3) — the "reference
      implementation against which others will be compared" that the
      paper calls for;
    - [Planned] compiles read-only pipelines into Volcano-style physical
      plans with cost-based pattern ordering (the architecture the paper
      attributes to Neo4j in Section 2) and executes update clauses
      through the reference implementation.

    Both modes implement the same language; {!cross_check} runs both and
    verifies that the result bags agree. *)

open Cypher_graph
open Cypher_table
open Cypher_semantics

type mode = Reference | Planned

type outcome = { graph : Graph.t; table : Table.t }
(** Result of a query: the possibly-updated graph and the output table
    ([output(Q, G)] in the paper's notation). *)

type error =
  | Parse_error of string
  | Syntax_error of string  (** static scope violations *)
  | Type_error of string
  | Runtime_error of string
  | Unsupported of string

val error_message : error -> string

type stmt_class = Read_only | Update
(** Whether a statement can mutate the graph, decided statically. *)

val classify : string -> stmt_class
(** Classifies a statement from its AST {e before} execution — the basis
    of the server's MVCC routing: [Read_only] statements run lock-free
    against a pinned snapshot, [Update] statements serialise on the
    single-writer path and execute exactly once.  Conservative where it
    must be: CALL counts as [Update] (a procedure may mutate), index DDL
    is [Update], EXPLAIN/PROFILE are [Read_only] (PROFILE of an update
    falls back to the plan rendering and never executes the update).
    [Read_only] is sound — no read clause can change the graph.  A
    statement that does not parse is [Read_only]: the lock-free path
    reports the identical parse error. *)

val query :
  ?config:Config.t -> ?mode:mode -> Graph.t -> string ->
  (outcome, string) result
(** Parses and evaluates a query.  Errors (parse errors, run-time type
    errors, unbound names) are returned as a message.  A query prefixed
    with [EXPLAIN] or [PROFILE] returns the plan rendering as a
    one-column table instead of executing normally. *)

val query_e :
  ?config:Config.t -> ?mode:mode -> Graph.t -> string ->
  (outcome, error) result
(** Like {!query} with a typed error.  EXPLAIN/PROFILE prefixes and
    index DDL are handled exactly as in {!query}, so remote clients —
    which reach the engine through this typed path — can ask for plans
    too. *)

val run : ?config:Config.t -> ?mode:mode -> Graph.t -> string -> Table.t
(** Like {!query} but raises [Failure] on error and discards graph
    updates — the convenient form for read-only queries. *)

val run_exn :
  ?config:Config.t -> ?mode:mode -> Graph.t -> string -> outcome
(** Like {!query} but raises [Failure] on error. *)

val stream :
  ?config:Config.t -> Graph.t -> string ->
  (Cypher_table.Record.t Seq.t, string) result
(** Lazily executes a read-only single query through the Volcano
    pipeline: rows are produced on demand, so consuming a prefix does
    only a prefix of the work (see the LIMIT short-circuit test).
    Queries the planner cannot compile are rejected. *)

val run_script :
  ?config:Config.t -> ?mode:mode -> Graph.t -> string ->
  (outcome, string) result
(** Runs a semicolon-separated sequence of statements, threading the
    graph; the outcome carries the final graph and the last statement's
    table.  Semicolons inside string literals are handled. *)

val explain : ?config:Config.t -> Graph.t -> string -> (string, string) result
(** The physical plan that [Planned] mode would execute, rendered as an
    indented operator tree with estimated row counts.  Queries with
    update clauses show one plan per read segment. *)

val profile : ?config:Config.t -> Graph.t -> string -> (string, string) result
(** Executes the query and renders the plan annotated per operator with
    estimated vs actual rows, {e db hits} (store accesses, see
    {!Graph.count_db_hits}) and elapsed time — PROFILE in the style of
    Neo4j.  Hits and time are the operator's own share (inputs
    subtracted); a [total:] footer gives the whole query.  Only
    read-only single queries are profiled; anything else falls back to
    the {!explain} rendering. *)

(** {1 The query-plan cache}

    [Session.run] re-lexed, re-parsed and re-planned every statement from
    scratch; the plan cache amortises that to zero for repeated read-only
    queries.  Entries are keyed by query text plus the parameter
    signature; each entry holds the parsed AST (valid against any graph)
    and, for read-only single queries, the compiled physical plan tagged
    with the {!Graph.version} whose statistics it was compiled from.
    When the graph changes, the next execution replans against fresh
    statistics — cached cardinality estimates can never go stale —
    while the parse and scope check are still reused. *)

type plan_cache

val create_plan_cache : ?capacity:int -> unit -> plan_cache
(** LRU over [capacity] (default 128) query texts. *)

type cache_stats = {
  cache_hits : int;  (** lookups that found an entry *)
  cache_misses : int;
  cache_replans : int;
      (** cached plans recompiled because the graph version moved *)
  cache_evictions : int;
}

val cache_stats : plan_cache -> cache_stats

val classify_cached : cache:plan_cache -> string -> stmt_class
(** {!classify}, memoised per query text in the session's plan cache so
    repeated statements skip the classification parse. *)

val query_cached :
  cache:plan_cache ->
  ?config:Config.t -> ?mode:mode -> Graph.t -> string ->
  (outcome, string) result
(** Like {!query}, going through the cache.  Semantically transparent:
    results are identical to the uncached path; [Reference] mode,
    non-default morphisms, EXPLAIN/PROFILE and index DDL bypass the
    cache. *)

val cross_check :
  ?config:Config.t -> Graph.t -> string -> (Table.t, string) result
(** Runs the query in both modes and checks that the outputs are equal as
    bags; returns the reference output on success and a diagnostic
    message on disagreement.  Used extensively by the test suite to keep
    the planned engine honest against the formal semantics. *)
