(** A small LRU map from query-cache keys to cached compilation results.

    The cache is deliberately generic: the engine stores parsed ASTs and
    compiled physical plans in it, but the structure only knows about
    string keys (query text + parameter signature, assembled by
    {!key}) and recency.  Eviction is least-recently-used; with the
    default capacities the linear eviction scan is negligible next to a
    single parse. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] defaults to 128 entries and must be positive. *)

val capacity : 'a t -> int
val length : 'a t -> int

val key : text:string -> params:string list -> string
(** Builds a cache key from the query text and the (sorted) parameter
    names in scope — two sessions differing only in which parameters they
    bind never share an entry.  Every segment is length-prefixed, so keys
    are injective in [(text, params)] even when a segment contains NUL
    or digit/colon bytes. *)

val find : 'a t -> string -> 'a option
(** Refreshes the entry's recency on a hit. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts or replaces; evicts the least recently used entry when the
    cache is full. *)

val clear : 'a t -> unit

val hits : 'a t -> int
(** Number of {!find} calls that found an entry. *)

val misses : 'a t -> int
val evictions : 'a t -> int
