type 'a entry = { mutable value : 'a; mutable last_used : int }

type 'a t = {
  cap : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable eviction_count : int;
}

let create ?(capacity = 128) () =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be positive";
  {
    cap = capacity;
    tbl = Hashtbl.create capacity;
    tick = 0;
    hit_count = 0;
    miss_count = 0;
    eviction_count = 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl

let key ~text ~params =
  match params with
  | [] -> text
  | _ -> text ^ "\x00" ^ String.concat "\x00" params

let touch t e =
  t.tick <- t.tick + 1;
  e.last_used <- t.tick

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | Some e ->
    t.hit_count <- t.hit_count + 1;
    touch t e;
    Some e.value
  | None ->
    t.miss_count <- t.miss_count + 1;
    None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.last_used -> acc
        | _ -> Some (k, e.last_used))
      t.tbl None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.eviction_count <- t.eviction_count + 1
  | None -> ()

let add t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some e ->
    e.value <- v;
    touch t e
  | None ->
    if Hashtbl.length t.tbl >= t.cap then evict_lru t;
    let e = { value = v; last_used = 0 } in
    touch t e;
    Hashtbl.replace t.tbl k e

let clear t = Hashtbl.reset t.tbl

let hits t = t.hit_count
let misses t = t.miss_count
let evictions t = t.eviction_count
