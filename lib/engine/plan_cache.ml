(* Process-wide series aggregated across every cache instance; the
   per-instance counters below survive for {!Engine.cache_stats}'s
   per-session view. *)
let m_hits =
  Cypher_obs.Registry.counter ~help:"plan cache lookups served from cache"
    "cypher_plan_cache_hits_total"

let m_misses =
  Cypher_obs.Registry.counter ~help:"plan cache lookups that missed"
    "cypher_plan_cache_misses_total"

let m_evictions =
  Cypher_obs.Registry.counter ~help:"plan cache LRU evictions"
    "cypher_plan_cache_evictions_total"

type 'a entry = { mutable value : 'a; mutable last_used : int }

type 'a t = {
  cap : int;
  tbl : (string, 'a entry) Hashtbl.t;
  (* The server shares a session between its reader pool and the write
     path, so every Hashtbl mutation and every counter update happens
     under this lock. *)
  lock : Mutex.t;
  mutable tick : int;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable eviction_count : int;
}

let create ?(capacity = 128) () =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be positive";
  {
    cap = capacity;
    tbl = Hashtbl.create capacity;
    lock = Mutex.create ();
    tick = 0;
    hit_count = 0;
    miss_count = 0;
    eviction_count = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = t.cap
let length t = locked t (fun () -> Hashtbl.length t.tbl)

(* Each segment is length-prefixed so no (text, params) pair can forge
   another's key: the old "\x00"-joined form collided whenever the query
   text or a parameter name itself contained a NUL byte. *)
let key ~text ~params =
  let buf = Buffer.create (String.length text + 16) in
  let segment s =
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  segment text;
  List.iter segment params;
  Buffer.contents buf

let touch t e =
  t.tick <- t.tick + 1;
  e.last_used <- t.tick

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | Some e ->
        t.hit_count <- t.hit_count + 1;
        Cypher_obs.Registry.incr m_hits;
        touch t e;
        Some e.value
      | None ->
        t.miss_count <- t.miss_count + 1;
        Cypher_obs.Registry.incr m_misses;
        None)

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.last_used -> acc
        | _ -> Some (k, e.last_used))
      t.tbl None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.eviction_count <- t.eviction_count + 1;
    Cypher_obs.Registry.incr m_evictions
  | None -> ()

let add t k v =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | Some e ->
        e.value <- v;
        touch t e
      | None ->
        if Hashtbl.length t.tbl >= t.cap then evict_lru t;
        let e = { value = v; last_used = 0 } in
        touch t e;
        Hashtbl.replace t.tbl k e)

let clear t = locked t (fun () -> Hashtbl.reset t.tbl)

let hits t = locked t (fun () -> t.hit_count)
let misses t = locked t (fun () -> t.miss_count)
let evictions t = locked t (fun () -> t.eviction_count)
