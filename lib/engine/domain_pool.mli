(** The process-wide worker-domain pool for parallel read execution.

    Domains are spawned lazily on first use and kept for the life of
    the process (an [at_exit] hook joins them, since the OCaml runtime
    waits for live domains).  Scheduling is work-stealing over an
    atomic task counter, and the caller of {!run} always participates
    as one worker, which makes concurrent jobs deadlock-free: a job
    never waits on pool capacity, it only speeds up with it.

    The pool exposes its state on {!Cypher_obs.Registry}:
    [cypher_pool_domains], [cypher_pool_busy], [cypher_pool_tasks_total],
    [cypher_pool_jobs_total] and [cypher_pool_task_errors_total]. *)

val run : workers:int -> int -> (int -> unit) -> unit
(** [run ~workers n f] executes [f 0 .. f (n-1)], each exactly once,
    on up to [workers] domains (the calling one included; helper count
    is clamped to the pool's hard ceiling).  Returns when all [n] have
    completed.  [f] must not raise — exceptions are swallowed and
    counted, so callers must capture outcomes themselves.  With
    [workers <= 1] (or [n <= 1]) the tasks run inline on the caller in
    index order, bypassing the pool entirely. *)

val size : unit -> int
(** Worker domains currently alive. *)

val shutdown : unit -> unit
(** Joins every pool domain (they finish their current task first).
    Installed as an [at_exit] hook; safe to call more than once, and
    the pool re-grows on the next {!run} after a manual shutdown. *)
