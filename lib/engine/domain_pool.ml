(* The process-wide worker-domain pool behind parallel read execution.

   One pool per process, sized lazily: domains are spawned the first
   time a job asks for them and kept for the life of the process, so
   the spawn cost (~ tens of microseconds plus a runtime ring slot) is
   paid once, not per query.  A job ([run ~workers n f]) is a bag of
   [n] independent index-addressed tasks; scheduling is work-stealing
   over a single atomic next-index counter, so morsel imbalance (one
   morsel hits a hub node, another is all misses) self-corrects: fast
   workers just claim more indices.

   The caller always participates as one of the workers.  That bounds
   the helpers needed at [workers - 1], and — more importantly — makes
   the pool deadlock-free under concurrent jobs: even if every pool
   domain is busy with other jobs, each caller drives its own job to
   completion alone, merely without speed-up.

   Tasks MUST NOT raise: the executor wraps each morsel and stores the
   outcome; a leaked exception here would kill a worker domain.  As a
   backstop, leaked exceptions are swallowed (and counted).

   OCaml's runtime joins live domains at process exit, so an [at_exit]
   hook shuts the pool down: it flips [shutting_down], wakes every
   sleeper, and joins.  Without it, any process that ever ran a
   parallel query would hang on exit. *)

module Registry = Cypher_obs.Registry

let m_domains =
  Registry.gauge ~help:"worker domains spawned by the pool"
    "cypher_pool_domains"

let m_busy =
  Registry.gauge ~help:"pool domains currently executing tasks"
    "cypher_pool_busy"

let m_tasks =
  Registry.counter ~help:"tasks (morsels) executed on pool domains"
    "cypher_pool_tasks_total"

let m_jobs =
  Registry.counter ~help:"parallel jobs submitted to the pool"
    "cypher_pool_jobs_total"

let m_task_errors =
  Registry.counter ~help:"tasks that leaked an exception (executor bug)"
    "cypher_pool_task_errors_total"

(* Hard ceiling on pool size; requests beyond it are clamped, not
   refused.  8 helpers saturate any plausible host for this workload
   long before memory bandwidth stops scaling. *)
let max_domains = 8

type job = {
  j_run : int -> unit;
  j_total : int;
  j_next : int Atomic.t;  (* next unclaimed task index *)
  j_done : int Atomic.t;  (* completed tasks *)
  j_mutex : Mutex.t;
  j_cond : Condition.t;
  mutable j_finished : bool;
}

let lock = Mutex.create ()
let work_available = Condition.create ()
let queue : job Queue.t = Queue.create ()
let domains : unit Domain.t list ref = ref []
let shutting_down = ref false  (* under [lock] *)

(* Claims task indices until the job is drained.  Runs on pool domains
   and on the caller alike. *)
let help job ~on_pool =
  let rec loop () =
    let i = Atomic.fetch_and_add job.j_next 1 in
    if i < job.j_total then begin
      if on_pool then Registry.incr m_tasks;
      (try job.j_run i
       with _ -> Registry.incr m_task_errors);
      let completed = 1 + Atomic.fetch_and_add job.j_done 1 in
      if completed = job.j_total then begin
        Mutex.lock job.j_mutex;
        job.j_finished <- true;
        Condition.broadcast job.j_cond;
        Mutex.unlock job.j_mutex
      end;
      loop ()
    end
  in
  loop ()

let rec worker_loop () =
  Mutex.lock lock;
  while Queue.is_empty queue && not !shutting_down do
    Condition.wait work_available lock
  done;
  if !shutting_down then Mutex.unlock lock
  else begin
    let job = Queue.pop queue in
    Mutex.unlock lock;
    Registry.gauge_incr m_busy;
    help job ~on_pool:true;
    Registry.gauge_decr m_busy;
    worker_loop ()
  end

(* Grows the pool to [n] domains; no-op once it is there.  Under
   [lock] so two racing jobs cannot over-spawn. *)
let ensure_domains n =
  let n = min n max_domains in
  Mutex.lock lock;
  while List.length !domains < n && not !shutting_down do
    domains := Domain.spawn worker_loop :: !domains;
    Registry.gauge_incr m_domains
  done;
  Mutex.unlock lock

let size () =
  Mutex.lock lock;
  let n = List.length !domains in
  Mutex.unlock lock;
  n

let run ~workers n f =
  if n > 0 then begin
    if workers <= 1 || n = 1 then
      for i = 0 to n - 1 do f i done
    else begin
      Registry.incr m_jobs;
      let helpers = min (workers - 1) (n - 1) in
      ensure_domains helpers;
      let job =
        {
          j_run = f;
          j_total = n;
          j_next = Atomic.make 0;
          j_done = Atomic.make 0;
          j_mutex = Mutex.create ();
          j_cond = Condition.create ();
          j_finished = false;
        }
      in
      Mutex.lock lock;
      (* one queue entry per helper we want on this job; a domain that
         pops a handle after the job drained exits [help] immediately *)
      for _ = 1 to helpers do Queue.push job queue done;
      Condition.broadcast work_available;
      Mutex.unlock lock;
      help job ~on_pool:false;
      Mutex.lock job.j_mutex;
      while not job.j_finished do Condition.wait job.j_cond job.j_mutex done;
      Mutex.unlock job.j_mutex
    end
  end

let shutdown () =
  Mutex.lock lock;
  shutting_down := true;
  Queue.clear queue;
  Condition.broadcast work_available;
  let ds = !domains in
  domains := [];
  Mutex.unlock lock;
  List.iter Domain.join ds;
  Mutex.lock lock;
  shutting_down := false;
  Mutex.unlock lock

(* see the module comment: live domains block process exit *)
let () = at_exit shutdown
