open Cypher_graph
open Cypher_table
open Cypher_ast
open Ast
open Cypher_semantics
module Build = Cypher_planner.Build
module Exec = Cypher_planner.Exec
module Plan = Cypher_planner.Plan
module Registry = Cypher_obs.Registry
module Trace = Cypher_obs.Trace
module Slowlog = Cypher_obs.Slowlog
module Qstats = Cypher_obs.Qstats

(* force the algo.* procedures to link with the engine *)
let () = Cypher_procs.Procs.ensure ()

(* --- observability ---------------------------------------------------- *)

let m_queries_planned =
  Registry.counter ~help:"queries executed in Planned mode"
    "cypher_engine_queries_planned_total"

let m_queries_reference =
  Registry.counter ~help:"queries executed in Reference mode"
    "cypher_engine_queries_reference_total"

let m_query_errors =
  Registry.counter ~help:"queries rejected with an error"
    "cypher_engine_query_errors_total"

let m_rows_produced =
  Registry.counter ~help:"result rows returned by all queries"
    "cypher_engine_rows_produced_total"

let m_query_latency =
  Registry.histogram ~help:"end-to-end query latency (microsecond buckets)"
    "cypher_engine_query_latency"

let m_reference_fallback =
  Registry.counter
    ~help:
      "Planned-mode queries silently re-run on the reference evaluator \
       because the planner raised Unsupported"
    "cypher_engine_reference_fallback_total"

type mode = Reference | Planned

type outcome = { graph : Graph.t; table : Table.t }

let mode_name = function Planned -> "planned" | Reference -> "reference"

(* One observation per top-level engine call: mode and latency series,
   rows produced, per-fingerprint workload statistics, and — when armed
   — the slow-query log with its per-span breakdown.  The public entry
   points ({!query_e}, {!query_cached}) wrap exactly once; everything
   they call internally goes through unobserved helpers, so nothing
   double-counts.  [?cache_hit] is a cell the caller flips when the
   query resolved through the plan cache; [?fallback] is a cell
   {!run_ast} fills with the planner's Unsupported message when a
   Planned-mode query silently fell back to the reference evaluator, so
   the slow-query log names both the mode asked for and the one that
   ran. *)
let observe_query ~mode ~text ?(cache_hit = ref false)
    ?(fallback : string option ref = ref None) f =
  Registry.incr
    (match mode with
    | Planned -> m_queries_planned
    | Reference -> m_queries_reference);
  let slow = Slowlog.armed () in
  if slow then Trace.begin_collect ();
  let hits0 = Graph.db_hits () in
  let t0 = Trace.now_us () in
  let result =
    match Trace.with_span "query" f with
    | r -> r
    | exception e ->
      if slow then ignore (Trace.end_collect ());
      Registry.incr m_query_errors;
      raise e
  in
  let elapsed_us = Trace.now_us () - t0 in
  Registry.observe_us m_query_latency elapsed_us;
  let spans = if slow then Trace.end_collect () else [] in
  let rows =
    match result with
    | Ok outcome -> Table.row_count outcome.table
    | Error _ -> 0
  in
  (match result with
  | Ok _ -> Registry.add m_rows_produced rows
  | Error _ -> Registry.incr m_query_errors);
  (* db hits are counted only while a profiled run has the counter on;
     the cumulative delta is 0 for ordinary runs and approximate when
     profiled runs overlap on other threads. *)
  let db_hits = max 0 (Graph.db_hits () - hits0) in
  let trace = Trace.current_trace_id () in
  if Qstats.enabled () then
    Qstats.observe ~text ~elapsed_us ~rows ~db_hits ~cache_hit:!cache_hit
      ~error:(Result.is_error result) ~trace;
  if slow then begin
    let mode_str =
      match !fallback with
      | Some _ -> mode_name mode ^ "+reference-fallback"
      | None -> mode_name mode
    in
    Slowlog.note ~trace_id:trace
      ~fingerprint:(Qstats.fingerprint_hash text)
      ~conn:(Slowlog.current_conn ())
      ~query:text ~mode:mode_str ~elapsed_us ~rows ~spans ()
  end;
  result

(* Clauses executed by the reference implementation between plan
   segments: updates and CALL. *)
let is_update_clause = function
  | C_create _ | C_delete _ | C_set _ | C_remove _ | C_merge _ | C_call _
  | C_foreach _ ->
    true
  | C_match _ | C_with _ | C_unwind _ -> false

(* Splits a clause list into alternating read segments and single update
   clauses, preserving order. *)
let segment clauses =
  let rec go acc current = function
    | [] -> List.rev (`Read (List.rev current) :: acc)
    | c :: rest when is_update_clause c ->
      go (`Update c :: `Read (List.rev current) :: acc) [] rest
    | c :: rest -> go acc (c :: current) rest
  in
  go [] [] clauses

(* Statistics are cached per graph version; versions are drawn from a
   process-global counter, so equal versions always denote the same graph
   value and the cache can never serve stale numbers.  The cache is
   process-global too and the server plans on concurrent threads, hence
   the mutex; a racing miss at worst collects the statistics twice. *)
let stats_cache : (int * Stats.t) option ref = ref None
let stats_lock = Mutex.create ()

let stats_of g =
  let cached =
    Mutex.lock stats_lock;
    let c = !stats_cache in
    Mutex.unlock stats_lock;
    c
  in
  match cached with
  | Some (v, s) when v = Graph.version g -> s
  | _ ->
    let s = Stats.collect g in
    Mutex.lock stats_lock;
    stats_cache := Some (Graph.version g, s);
    Mutex.unlock stats_lock;
    s

(* The executor entry point for read segments: sequential by default,
   morsel-parallel over the domain pool when the session's config asks
   for more than one worker.  Only full-table runs are routed — PROFILE
   and [stream] keep the sequential executor, whose per-pull
   instrumentation and laziness do not decompose. *)
let exec_run cfg g ~fields plan table =
  let workers = cfg.Config.parallel in
  if workers > 1 then
    Cypher_planner.Par_exec.run
      { Cypher_planner.Par_exec.workers;
        run_tasks = (fun n f -> Domain_pool.run ~workers n f);
      }
      cfg g ~fields plan table
  else Exec.run cfg g ~fields plan table

let run_single_planned cfg g sq =
  let stats = stats_of g in
  let segments = segment sq.sq_clauses in
  let rec go g table visible = function
    | [] ->
      (* all segments consumed; sq_return was folded into the last read
         segment *)
      { graph = g; table }
    | [ `Read clauses ] ->
      let { Build.plan; fields } =
        Trace.with_span "plan" (fun () ->
            Build.compile_clauses ~stats ~visible clauses sq.sq_return)
      in
      let table =
        Trace.with_span "execute" (fun () -> exec_run cfg g ~fields plan table)
      in
      { graph = g; table }
    | `Read clauses :: rest ->
      let { Build.plan; fields } =
        Trace.with_span "plan" (fun () ->
            Build.compile_clauses ~stats ~visible clauses None)
      in
      let table =
        Trace.with_span "execute" (fun () -> exec_run cfg g ~fields plan table)
      in
      go g table fields rest
    | `Update c :: rest ->
      let state =
        Clauses.apply_clause cfg c { Clauses.graph = g; table }
      in
      go state.Clauses.graph state.Clauses.table
        (Table.fields state.Clauses.table)
        rest
  in
  let out = go g Table.unit [] segments in
  match sq.sq_return with
  | Some _ -> out
  | None -> { out with table = Table.empty ~fields:[] }

let rec run_query_planned cfg g = function
  | Q_single sq -> run_single_planned cfg g sq
  | Q_union (q1, q2) ->
    let s1 = run_query_planned cfg g q1 in
    let s2 = run_query_planned cfg s1.graph q2 in
    { graph = s2.graph; table = Table.dedup (Table.union s1.table s2.table) }
  | Q_union_all (q1, q2) ->
    let s1 = run_query_planned cfg g q1 in
    let s2 = run_query_planned cfg s1.graph q2 in
    { graph = s2.graph; table = Table.union s1.table s2.table }

type error =
  | Parse_error of string
  | Syntax_error of string (* static scope violations *)
  | Type_error of string
  | Runtime_error of string
  | Unsupported of string

let error_message = function
  | Parse_error m -> "parse error: " ^ m
  | Syntax_error m -> "syntax error: " ^ m
  | Type_error m -> "type error: " ^ m
  | Runtime_error m -> "runtime error: " ^ m
  | Unsupported m -> "unsupported: " ^ m

let catching_e f =
  match f () with
  | v -> Ok v
  | exception Functions.Eval_error msg -> Error (Runtime_error msg)
  | exception Cypher_values.Value.Type_error msg -> Error (Type_error msg)
  | exception Build.Unsupported msg -> Error (Unsupported msg)
  | exception Invalid_argument msg -> Error (Runtime_error msg)
  | exception Division_by_zero -> Error (Runtime_error "division by zero")

(* DDL outside the query grammar: CREATE INDEX ON :Label(key) and
   DROP INDEX ON :Label(key), as in Neo4j 3.x. *)
let parse_index_ddl text =
  let t = String.trim text in
  let lower = String.lowercase_ascii t in
  let prefix p = String.length lower >= String.length p && String.sub lower 0 (String.length p) = p in
  let action =
    if prefix "create index on" then Some `Create
    else if prefix "drop index on" then Some `Drop
    else None
  in
  match action with
  | None -> None
  | Some action -> (
    match String.index_opt t ':' with
    | None -> Some (Error "index DDL: expected :Label(key)")
    | Some i -> (
      let rest = String.sub t (i + 1) (String.length t - i - 1) in
      match String.index_opt rest '(' with
      | None -> Some (Error "index DDL: expected (key)")
      | Some j -> (
        let label = String.trim (String.sub rest 0 j) in
        let after = String.sub rest (j + 1) (String.length rest - j - 1) in
        match String.index_opt after ')' with
        | None -> Some (Error "index DDL: expected closing parenthesis")
        | Some k ->
          let key = String.trim (String.sub after 0 k) in
          Some (Ok (action, label, key)))))

let strip_prefix_kw kw text =
  let t = String.trim text in
  let n = String.length kw in
  if
    String.length t > n
    && String.uppercase_ascii (String.sub t 0 n) = kw
    && t.[n] = ' '
  then Some (String.sub t n (String.length t - n))
  else None

(* --- statement classification ----------------------------------------- *)

(* Whether a statement can mutate the graph, decided from the AST before
   execution.  The server uses this to route reads to a lock-free MVCC
   snapshot and writes to the single-writer path, instead of the old
   run-under-read-lock-then-discard-and-rerun dance that executed every
   update twice.  CALL is conservatively a write (a procedure may
   mutate); a Write-classified statement that turns out to touch nothing
   simply produces no commit.  Read_only is sound: no read clause can
   change the graph. *)
type stmt_class = Read_only | Update

let rec classify_ast = function
  | Q_single sq ->
    if List.exists is_update_clause sq.sq_clauses then Update else Read_only
  | Q_union (q1, q2) | Q_union_all (q1, q2) ->
    if classify_ast q1 = Update || classify_ast q2 = Update then Update
    else Read_only

let classify text =
  match parse_index_ddl text with
  | Some (Ok _) -> Update
  | Some (Error _) -> Read_only (* rejected before touching the graph *)
  | None -> (
    (* EXPLAIN never executes; PROFILE executes read-only queries and
       falls back to EXPLAIN for updates — neither mutates. *)
    match strip_prefix_kw "EXPLAIN" text with
    | Some _ -> Read_only
    | None -> (
      match strip_prefix_kw "PROFILE" text with
      | Some _ -> Read_only
      | None -> (
        match Cypher_parser.Parser.parse_query text with
        | Error _ ->
          (* unparseable: let the lock-free read path report the error *)
          Read_only
        | Ok ast -> classify_ast ast)))

(* Evaluation of an already-parsed, already-scope-checked query — shared
   between the one-shot path and the plan-cache hit path.  [?fallback]
   reports a Planned→Reference downgrade to the caller's observation
   wrapper (see {!observe_query}). *)
let run_ast ?(fallback : string option ref = ref None) config mode g ast =
  let use_reference =
    mode = Reference || config.Config.morphism <> Config.Edge_isomorphism
  in
  let reference () =
    Trace.with_span "execute" (fun () ->
        let state = Clauses.run_query config g ast in
        { graph = state.Clauses.graph; table = state.Clauses.table })
  in
  catching_e (fun () ->
      if use_reference then reference ()
      else
        (* planner limitations (e.g. ORDER BY on a non-projected
           variable under DISTINCT) fall back to the reference
           semantics rather than failing — but never silently: the
           downgrade is counted, traced with its reason, and stamped
           onto the slow-query log entry by the caller *)
        try run_query_planned config g ast
        with Build.Unsupported msg ->
          Registry.incr m_reference_fallback;
          fallback := Some msg;
          Trace.note ~attrs:[ ("reason", msg) ] "reference_fallback" 0;
          reference ())

(* EXPLAIN/PROFILE as query prefixes return the rendering as a
   one-column table, so the same plans travel over the wire protocol
   as any other result. *)
let plan_table text =
  let rows =
    List.filter_map
      (fun line -> if line = "" then None else Some (Record.of_list [ ("plan", Cypher_values.Value.String line) ]))
      (String.split_on_char '\n' text)
  in
  Table.create ~fields:[ "plan" ] rows

let parse_q text =
  Trace.with_span "parse" (fun () -> Cypher_parser.Parser.parse_query text)

let explain_e ?(config = Config.default) g text =
  ignore config;
  match parse_q text with
  | Error e -> Error (Parse_error e)
  | Ok ast ->
    let stats = stats_of g in
    let buf = Buffer.create 256 in
    let rec go_query = function
      | Q_single sq -> go_single sq
      | Q_union (q1, q2) ->
        go_query q1;
        Buffer.add_string buf "UNION\n";
        go_query q2
      | Q_union_all (q1, q2) ->
        go_query q1;
        Buffer.add_string buf "UNION ALL\n";
        go_query q2
    and go_single sq =
      let segments = segment sq.sq_clauses in
      let rec go visible = function
        | [] -> ()
        | [ `Read clauses ] -> (
          match
            Trace.with_span "plan" (fun () ->
                Build.compile_clauses ~stats ~visible clauses sq.sq_return)
          with
          | { Build.plan; _ } ->
            Buffer.add_string buf
              (Cypher_planner.Cost.explain_with_estimates stats plan)
          | exception Build.Unsupported msg ->
            Buffer.add_string buf ("(not planned: " ^ msg ^ ")\n"))
        | `Read clauses :: rest -> (
          match
            Trace.with_span "plan" (fun () ->
                Build.compile_clauses ~stats ~visible clauses None)
          with
          | { Build.plan; fields } ->
            Buffer.add_string buf
              (Cypher_planner.Cost.explain_with_estimates stats plan);
            go fields rest
          | exception Build.Unsupported msg ->
            Buffer.add_string buf ("(not planned: " ^ msg ^ ")\n");
            go visible rest)
        | `Update c :: rest ->
          Buffer.add_string buf
            (Format.asprintf "+ Update [%a]@." Cypher_ast.Pretty.pp_clause c);
          go visible rest
      in
      go [] segments
    in
    (match catching_e (fun () -> go_query ast) with
    | Ok () -> Ok (Buffer.contents buf)
    | Error e -> Error e)

(* PROFILE time rendering: microseconds below a millisecond, then ms. *)
let pp_prof_ns ns =
  let us = float_of_int ns /. 1e3 in
  if us < 1000. then Printf.sprintf "%.1fus" us
  else Printf.sprintf "%.2fms" (us /. 1000.)

let profile_e ?(config = Config.default) g text =
  match parse_q text with
  | Error e -> Error (Parse_error e)
  | Ok (Q_single { sq_clauses; sq_return })
    when not (List.exists is_update_clause sq_clauses) -> (
    let stats = stats_of g in
    match
      Trace.with_span "plan" (fun () ->
          Build.compile_clauses ~stats ~visible:[] sq_clauses sq_return)
    with
    | { Build.plan; fields } ->
      catching_e (fun () ->
          let table, actual =
            Trace.with_span "execute" (fun () ->
                Exec.run_profiled config g ~fields plan Table.unit)
          in
          let rendered =
            Format.asprintf "%a"
              (Plan.pp_annotated ~annotate:(fun node ->
                   let incl = actual node in
                   let self = Exec.self_profile actual node in
                   Printf.sprintf
                     "  (est. %.1f rows, actual %d rows, %d db-hits, %s)"
                     (Cypher_planner.Cost.estimate stats node)
                       .Cypher_planner.Cost.rows incl.Exec.prof_rows
                     self.Exec.prof_hits (pp_prof_ns self.Exec.prof_ns)))
              plan
          in
          let total = actual plan in
          rendered
          ^ Printf.sprintf "total: %d rows, %d db-hits, %s\n"
              (Table.row_count table) total.Exec.prof_hits
              (pp_prof_ns total.Exec.prof_ns))
    | exception Build.Unsupported msg -> Error (Unsupported msg))
  | Ok _ -> explain_e ~config g text

(* Unobserved evaluation: the shared body of every public entry point.
   EXPLAIN/PROFILE prefixes and index DDL are handled here so the typed
   path used by the server sees them too, not only the string API. *)
let query_raw ?fallback ?(config = Config.default) ?(mode = Planned) g text =
  match parse_index_ddl text with
  | Some (Error e) -> Error (Parse_error e)
  | Some (Ok (action, label, key)) ->
    let g =
      match action with
      | `Create -> Graph.create_index g ~label ~key
      | `Drop -> Graph.drop_index g ~label ~key
    in
    Ok { graph = g; table = Table.empty ~fields:[] }
  | None ->
  match strip_prefix_kw "EXPLAIN" text with
  | Some rest ->
    Result.map
      (fun p -> { graph = g; table = plan_table p })
      (explain_e ~config g rest)
  | None ->
  match strip_prefix_kw "PROFILE" text with
  | Some rest ->
    Result.map
      (fun p -> { graph = g; table = plan_table p })
      (profile_e ~config g rest)
  | None -> (
    match parse_q text with
    | Error e -> Error (Parse_error e)
    | Ok ast when Result.is_error (Scope_check.check_query ast) ->
      Error (Syntax_error (Result.get_error (Scope_check.check_query ast)))
    | Ok ast -> run_ast ?fallback config mode g ast)

let query_e ?(config = Config.default) ?(mode = Planned) g text =
  let fallback = ref None in
  observe_query ~mode ~text ~fallback (fun () ->
      query_raw ~fallback ~config ~mode g text)

let query_plain ?config ?mode g text =
  Result.map_error error_message (query_e ?config ?mode g text)

let run_exn ?config ?mode g text =
  match query_plain ?config ?mode g text with
  | Ok outcome -> outcome
  | Error e -> failwith e

let run ?config ?mode g text = (run_exn ?config ?mode g text).table

let stream ?(config = Config.default) g text =
  match Cypher_parser.Parser.parse_query text with
  | Error e -> Error ("parse error: " ^ e)
  | Ok ast when Result.is_error (Scope_check.check_query ast) ->
    Error ("syntax error: " ^ Result.get_error (Scope_check.check_query ast))
  | Ok (Q_single { sq_clauses; sq_return })
    when not (List.exists is_update_clause sq_clauses) -> (
    match
      Build.compile_clauses ~stats:(stats_of g) ~visible:[] sq_clauses
        sq_return
    with
    | { Build.plan; fields = _ } ->
      Ok (Exec.rows config g plan (Seq.return Cypher_table.Record.empty))
    | exception Build.Unsupported msg -> Error ("unsupported: " ^ msg))
  | Ok _ -> Error "stream: only read-only single queries can be streamed"

(* Splits a script on top-level semicolons (string literals and comments
   are respected). *)
let split_statements text =
  let n = String.length text in
  let out = ref [] and buf = Buffer.create 128 in
  let flush () =
    let s = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if s <> "" then out := s :: !out
  in
  let i = ref 0 in
  while !i < n do
    (match text.[!i] with
    | ';' -> flush ()
    | ('\'' | '"') as quote ->
      Buffer.add_char buf quote;
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        Buffer.add_char buf text.[!i];
        if text.[!i] = '\\' && !i + 1 < n then begin
          incr i;
          Buffer.add_char buf text.[!i]
        end
        else if text.[!i] = quote then closed := true;
        incr i
      done;
      decr i
    | '/' when !i + 1 < n && text.[!i + 1] = '/' ->
      while !i < n && text.[!i] <> '\n' do incr i done;
      Buffer.add_char buf '\n'
    | c -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !out

let run_script ?config ?mode g text =
  let rec go g last = function
    | [] -> Ok { graph = g; table = (match last with Some t -> t | None -> Table.empty ~fields:[]) }
    | stmt :: rest -> (
      match query_plain ?config ?mode g stmt with
      | Error e -> Error (Printf.sprintf "in statement %S: %s" stmt e)
      | Ok outcome -> go outcome.graph (Some outcome.table) rest)
  in
  go g None (split_statements text)

let explain ?config g text =
  Result.map_error error_message (explain_e ?config g text)

let profile ?config g text =
  Result.map_error error_message (profile_e ?config g text)

let cross_check ?(config = Config.default) g text =
  match
    ( query_plain ~config ~mode:Reference g text,
      query_plain ~config ~mode:Planned g text )
  with
  | Error _, Error _ ->
    (* both engines reject the query: that is agreement too *)
    Ok (Table.empty ~fields:[])
  | Error e, Ok _ ->
    Error ("reference engine failed where planned succeeded: " ^ e)
  | Ok _, Error e ->
    Error ("planned engine failed where reference succeeded: " ^ e)
  | Ok ref_out, Ok planned_out ->
    if Table.bag_equal ref_out.table planned_out.table then Ok ref_out.table
    else
      Error
        (Format.asprintf
           "engines disagree on %S:@.reference:@.%a@.planned:@.%a" text
           Table.pp ref_out.table Table.pp planned_out.table)

(* EXPLAIN/PROFILE prefixes and index DDL are handled inside
   {!query_e}, so the string and typed APIs behave identically. *)
let query ?config ?mode g text = query_plain ?config ?mode g text

(* ------------------------------------------------------------------ *)
(* The query-plan cache                                                *)
(* ------------------------------------------------------------------ *)

(* A cache entry always carries the parsed, scope-checked AST (reusable
   against any graph); read-only single queries additionally carry the
   compiled physical plan tagged with the version of the graph whose
   statistics drove the compilation.  A version mismatch keeps the AST
   but replans, so updates invalidate cardinality estimates without
   paying for parsing again. *)
type cache_entry = {
  ce_ast : Ast.query;
  mutable ce_plan : (int * Build.compiled) option;
}

type plan_cache = {
  entries : cache_entry Plan_cache.t;
  (* statement classification memoised per query text; bounded, guarded
     by [classes_m] because the server classifies on connection threads *)
  classes : (string, stmt_class) Hashtbl.t;
  classes_m : Mutex.t;
  mutable replans : int;
}

type cache_stats = {
  cache_hits : int;
  cache_misses : int;
  cache_replans : int;
  cache_evictions : int;
}

let create_plan_cache ?capacity () =
  {
    entries = Plan_cache.create ?capacity ();
    classes = Hashtbl.create 64;
    classes_m = Mutex.create ();
    replans = 0;
  }

let max_class_cache = 1024

let classify_cached ~cache text =
  Mutex.lock cache.classes_m;
  let hit = Hashtbl.find_opt cache.classes text in
  Mutex.unlock cache.classes_m;
  match hit with
  | Some c -> c
  | None ->
    let c = classify text in
    Mutex.lock cache.classes_m;
    if Hashtbl.length cache.classes >= max_class_cache then
      Hashtbl.reset cache.classes;
    Hashtbl.replace cache.classes text c;
    Mutex.unlock cache.classes_m;
    c

let cache_stats c =
  {
    cache_hits = Plan_cache.hits c.entries;
    cache_misses = Plan_cache.misses c.entries;
    cache_replans = c.replans;
    cache_evictions = Plan_cache.evictions c.entries;
  }

(* Only read-only single queries with a RETURN have their physical plan
   cached; everything else still amortises parse + scope check. *)
let plan_cacheable = function
  | Q_single { sq_clauses; sq_return = Some _ } ->
    not (List.exists is_update_clause sq_clauses)
  | _ -> false

let run_cached_entry ?fallback cache config g entry =
  if plan_cacheable entry.ce_ast then begin
    let version = Graph.version g in
    let compiled =
      match entry.ce_plan with
      | Some (v, c) when v = version -> Some c
      | prior -> (
        match entry.ce_ast with
        | Q_single { sq_clauses; sq_return } -> (
          match
            Trace.with_span "plan" (fun () ->
                Build.compile_clauses ~stats:(stats_of g) ~visible:[]
                  sq_clauses sq_return)
          with
          | c ->
            if Option.is_some prior then cache.replans <- cache.replans + 1;
            entry.ce_plan <- Some (version, c);
            Some c
          | exception Build.Unsupported _ -> None)
        | _ -> None)
    in
    match compiled with
    | Some { Build.plan; fields } ->
      catching_e (fun () ->
          { graph = g;
            table =
              Trace.with_span "execute" (fun () ->
                  exec_run config g ~fields plan Table.unit);
          })
    | None -> run_ast ?fallback config Planned g entry.ce_ast
  end
  else run_ast ?fallback config Planned g entry.ce_ast

let query_cached ~cache ?(config = Config.default) ?(mode = Planned) g text =
  let cache_hit = ref false in
  let fallback = ref None in
  observe_query ~mode ~text ~cache_hit ~fallback @@ fun () ->
  let cacheable_config =
    mode = Planned && config.Config.morphism = Config.Edge_isomorphism
  in
  if not cacheable_config then
    Result.map_error error_message (query_raw ~fallback ~config ~mode g text)
  else begin
    let params =
      List.map fst (Cypher_values.Value.Smap.bindings config.Config.params)
    in
    let key = Plan_cache.key ~text ~params in
    match Plan_cache.find cache.entries key with
    | Some entry ->
      cache_hit := true;
      Result.map_error error_message
        (run_cached_entry ~fallback cache config g entry)
    | None -> (
      (* Miss: parse and scope-check once.  Index DDL and EXPLAIN/PROFILE
         prefixes do not parse as queries and take the uncached path. *)
      match parse_q text with
      | Error _ -> Result.map_error error_message (query_raw ~config ~mode g text)
      | Ok ast -> (
        match Scope_check.check_query ast with
        | Error e -> Error (error_message (Syntax_error e))
        | Ok _ ->
          let entry = { ce_ast = ast; ce_plan = None } in
          Plan_cache.add cache.entries key entry;
          Result.map_error error_message
            (run_cached_entry ~fallback cache config g entry)))
  end
