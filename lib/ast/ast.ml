(* Abstract syntax of core Cypher.

   Patterns follow Figure 3 of the paper; expressions, clauses and
   queries follow Figure 5, extended with the update clauses (CREATE,
   DELETE, SET, REMOVE, MERGE of Section 2), ORDER BY / SKIP / LIMIT /
   DISTINCT modifiers, aggregation, CASE, list comprehensions, pattern
   predicates and parameters — the constructs exercised by the paper's
   example queries. *)

open Cypher_values

(* ------------------------------------------------------------------ *)
(* Patterns (Figure 3)                                                 *)
(* ------------------------------------------------------------------ *)

(* d ∈ {→, ←, ↔} *)
type direction = Left_to_right | Right_to_left | Undirected

(* Relationship-type regular expression: the RPQ layer over relationship
   types (GPC / GQL-PGQ).  Concatenation is written by juxtaposition,
   alternation with |, and the usual postfix closures apply.  A regex
   hop matches a finite rel-unique walk whose type word is in the
   language. *)
type type_regex =
  | TR_type of string (* one relationship type *)
  | TR_seq of type_regex list (* r1 r2 ... juxtaposition *)
  | TR_alt of type_regex list (* r1|r2|... *)
  | TR_star of type_regex (* r* *)
  | TR_plus of type_regex (* r+ *)
  | TR_opt of type_regex (* r? *)

(* GQL-style path restrictor: WALK places no restriction (classic Cypher
   semantics), TRAIL forbids repeated relationships within the path,
   ACYCLIC forbids repeated nodes. *)
type path_restrictor = Walk | Trail | Acyclic

(* A node pattern χ = (a, L, P). *)
type node_pattern = {
  np_name : string option;
  np_labels : string list;
  np_props : (string * expr) list;
}

(* I = (m, n) with nil components; the whole [rp_len = None] is I = nil,
   i.e. a rigid single-hop pattern. *)
and len_range = { len_min : int option; len_max : int option }

(* A relationship pattern ρ = (d, a, T, P, I).  When [rp_regex] is
   present the hop is a regular path query over relationship types:
   [rp_types] is empty and any variable binds the list of traversed
   relationships. *)
and rel_pattern = {
  rp_dir : direction;
  rp_name : string option;
  rp_types : string list;
  rp_props : (string * expr) list;
  rp_len : len_range option;
  rp_regex : type_regex option;
}

(* A path pattern χ1 ρ1 χ2 ... ρn-1 χn, optionally named (π/a).  The
   shortest-path modifier is the classic Cypher shortestPath(...) /
   allShortestPaths(...) / cheapestPath(..., 'cost') wrapper around a
   single-hop pattern; [pp_restr] is the GQL-style restrictor prefix. *)
and path_pattern = {
  pp_name : string option;
  pp_first : node_pattern;
  pp_rest : (rel_pattern * node_pattern) list;
  pp_shortest : shortest_mode;
  pp_restr : path_restrictor;
}

and shortest_mode =
  | No_shortest
  | Shortest
  | All_shortest
  | Cheapest of string (* numeric cost property summed over the path *)

(* ------------------------------------------------------------------ *)
(* Expressions (Figure 5)                                              *)
(* ------------------------------------------------------------------ *)

and literal =
  | L_null
  | L_bool of bool
  | L_int of int
  | L_float of float
  | L_string of string

and cmp_op = Lt | Le | Ge | Gt | Eq | Neq

and arith_op = Add | Sub | Mul | Div | Mod | Pow

and agg_fn = Count | Sum | Avg | Min | Max | Collect | Std_dev | Std_dev_p

and expr =
  | E_lit of literal
  | E_var of string (* a ∈ A *)
  | E_param of string (* $param *)
  | E_prop of expr * string (* expr.k *)
  | E_map of (string * expr) list (* { prop_list } *)
  | E_list of expr list (* [ expr_list ] *)
  | E_in of expr * expr (* expr IN expr *)
  | E_index of expr * expr (* expr[expr] *)
  | E_slice of expr * expr option * expr option (* expr[e1..e2] *)
  | E_starts_with of expr * expr
  | E_ends_with of expr * expr
  | E_contains of expr * expr
  | E_regex_match of expr * expr (* expr =~ pattern *)
  | E_or of expr * expr
  | E_and of expr * expr
  | E_xor of expr * expr
  | E_not of expr
  | E_is_null of expr
  | E_is_not_null of expr
  | E_cmp of cmp_op * expr * expr
  | E_arith of arith_op * expr * expr
  | E_neg of expr (* unary minus *)
  | E_fn of string * expr list (* f(expr_list), f ∈ F *)
  | E_count_star (* the count-star aggregate *)
  | E_agg of agg_fn * bool * expr (* aggregate, DISTINCT flag *)
  | E_agg_percentile of bool * bool * expr * expr
      (* continuous? distinct? value-expr percentile-expr *)
  | E_has_labels of expr * string list (* n:Label1:Label2 predicate *)
  | E_case of case_expr
  | E_list_comp of list_comp (* [x IN xs WHERE p | e] *)
  | E_pattern_pred of path_pattern (* pattern as predicate in WHERE *)
  | E_pattern_comp of pattern_comp (* [(a)-->(b) WHERE p | e] *)
  | E_map_projection of expr * map_proj_item list (* n {.k, .*, k: e} *)
  | E_exists_pattern of path_pattern (* exists((a)-[]->(b)) *)
  | E_quantified of quantifier * string * expr * expr
      (* all/any/none/single(x IN xs WHERE p) *)
  | E_reduce of {
      rd_acc : string;
      rd_init : expr;
      rd_var : string;
      rd_list : expr;
      rd_body : expr;
    } (* reduce(acc = init, x IN xs | body) *)

and quantifier = Q_all | Q_any | Q_none | Q_single

and case_expr = {
  case_subject : expr option; (* simple CASE e WHEN v ... vs searched CASE WHEN p ... *)
  case_branches : (expr * expr) list;
  case_default : expr option;
}

and list_comp = {
  lc_var : string;
  lc_source : expr;
  lc_where : expr option;
  lc_body : expr option; (* None means the variable itself *)
}

and pattern_comp = {
  pc_pattern : path_pattern;
  pc_where : expr option;
  pc_body : expr;
}

and map_proj_item =
  | Mp_property of string (* .key: copy one property *)
  | Mp_all_properties (* .* : copy every property *)
  | Mp_literal of string * expr (* key: expr *)
  | Mp_variable of string (* var — shorthand for var: var *)

(* ------------------------------------------------------------------ *)
(* Clauses and queries (Figure 5 + update clauses)                     *)
(* ------------------------------------------------------------------ *)

type sort_dir = Asc | Desc

type ret_item = { ri_expr : expr; ri_alias : string option }

(* The body shared by RETURN and WITH: projection list or star, DISTINCT,
   ORDER BY, SKIP, LIMIT. *)
and projection = {
  pj_distinct : bool;
  pj_star : bool; (* a star item, possibly alongside explicit items *)
  pj_items : ret_item list;
  pj_order_by : (expr * sort_dir) list;
  pj_skip : expr option;
  pj_limit : expr option;
}

type set_item =
  | S_prop of expr * string * expr (* e.k = expr *)
  | S_all_props of string * expr (* n = {map} : replace all properties *)
  | S_merge_props of string * expr (* n += {map} *)
  | S_labels of string * string list (* n:Label1:Label2 *)

type remove_item =
  | R_prop of expr * string
  | R_labels of string * string list

type clause =
  | C_foreach of {
      fe_var : string;
      fe_list : expr;
      fe_clauses : clause list; (* update clauses only *)
    }
  | C_call of {
      proc : string; (* qualified procedure name, e.g. db.labels *)
      args : expr list;
      yield_ : (string * string option) list;
          (* yielded columns with optional aliases; [] means all *)
    }
  | C_match of {
      opt : bool; (* OPTIONAL *)
      pattern : path_pattern list; (* pattern_tuple *)
      where : expr option;
    }
  | C_with of { proj : projection; where : expr option }
  | C_unwind of expr * string (* UNWIND expr AS a *)
  | C_create of path_pattern list
  | C_delete of { detach : bool; exprs : expr list }
  | C_set of set_item list
  | C_remove of remove_item list
  | C_merge of {
      pattern : path_pattern;
      on_create : set_item list;
      on_match : set_item list;
    }

type query =
  | Q_single of single_query
  | Q_union of query * query
  | Q_union_all of query * query

and single_query = {
  sq_clauses : clause list;
  sq_return : projection option; (* None for update-only queries *)
}

(* ------------------------------------------------------------------ *)
(* Constructors and small helpers                                      *)
(* ------------------------------------------------------------------ *)

let node ?name ?(labels = []) ?(props = []) () =
  { np_name = name; np_labels = labels; np_props = props }

let rel ?name ?(types = []) ?(props = []) ?len ?regex dir =
  {
    rp_dir = dir;
    rp_name = name;
    rp_types = types;
    rp_props = props;
    rp_len = len;
    rp_regex = regex;
  }

let path ?name ?(shortest = No_shortest) ?(restr = Walk) first rest =
  {
    pp_name = name;
    pp_first = first;
    pp_rest = rest;
    pp_shortest = shortest;
    pp_restr = restr;
  }

(* Concrete syntax of a type regex, parenthesised so that
   [parse ∘ print] is the identity under the rel-detail grammar. *)
let rec regex_to_string = function
  | TR_type t -> t
  | TR_seq rs ->
    String.concat " "
      (List.map
         (fun r ->
           match r with
           | TR_alt _ -> "(" ^ regex_to_string r ^ ")"
           | _ -> regex_to_string r)
         rs)
  | TR_alt rs -> String.concat "|" (List.map regex_to_string rs)
  | TR_star r -> regex_postfix_operand r ^ "*"
  | TR_plus r -> regex_postfix_operand r ^ "+"
  | TR_opt r -> regex_postfix_operand r ^ "?"

and regex_postfix_operand r =
  match r with
  | TR_type t -> t
  | _ -> "(" ^ regex_to_string r ^ ")"

let int_ i = E_lit (L_int i)
let float_ f = E_lit (L_float f)
let str s = E_lit (L_string s)
let bool_ b = E_lit (L_bool b)
let null = E_lit L_null
let var a = E_var a
let prop e k = E_prop (e, k)

let value_of_literal = function
  | L_null -> Value.Null
  | L_bool b -> Value.Bool b
  | L_int i -> Value.Int i
  | L_float f -> Value.Float f
  | L_string s -> Value.String s

let projection_of_items ?(distinct = false) ?(star = false) ?(order_by = [])
    ?skip ?limit items =
  {
    pj_distinct = distinct;
    pj_star = star;
    pj_items = items;
    pj_order_by = order_by;
    pj_skip = skip;
    pj_limit = limit;
  }

let item ?alias e = { ri_expr = e; ri_alias = alias }

(* Free variables of patterns (Section 4.2). *)

let free_node_pattern np = Option.to_list np.np_name

let free_rel_pattern rp = Option.to_list rp.rp_name

let free_path_pattern pp =
  let inner =
    free_node_pattern pp.pp_first
    @ List.concat_map
        (fun (rp, np) -> free_rel_pattern rp @ free_node_pattern np)
        pp.pp_rest
  in
  let named = match pp.pp_name with Some a -> [ a ] | None -> [] in
  List.sort_uniq String.compare (named @ inner)

let free_pattern_tuple pps =
  List.sort_uniq String.compare (List.concat_map free_path_pattern pps)

(* A relationship pattern is rigid when its range is a single number; a
   path pattern is rigid when all its relationship patterns are. *)

let range_of_len = function
  | None -> (1, Some 1)
  | Some { len_min; len_max } ->
    (Option.value len_min ~default:1, len_max)

let rel_is_rigid rp =
  rp.rp_regex = None
  &&
  match rp.rp_len with
  | None -> true
  | Some { len_min = Some m; len_max = Some n } -> m = n
  | Some _ -> false

let path_is_rigid pp = List.for_all (fun (rp, _) -> rel_is_rigid rp) pp.pp_rest

(* Free variables of an expression; comprehension and quantifier binders
   are removed from the free variables of their bodies. *)
let rec expr_free_vars = function
  | E_lit _ | E_param _ | E_count_star -> []
  | E_var a -> [ a ]
  | E_prop (e, _) | E_not e | E_is_null e | E_is_not_null e | E_neg e
  | E_has_labels (e, _) | E_agg (_, _, e) ->
    expr_free_vars e
  | E_agg_percentile (_, _, a, b) -> expr_free_vars a @ expr_free_vars b
  | E_map kvs -> List.concat_map (fun (_, e) -> expr_free_vars e) kvs
  | E_list es | E_fn (_, es) -> List.concat_map expr_free_vars es
  | E_in (a, b) | E_index (a, b)
  | E_starts_with (a, b) | E_ends_with (a, b) | E_contains (a, b)
  | E_regex_match (a, b)
  | E_or (a, b) | E_and (a, b) | E_xor (a, b)
  | E_cmp (_, a, b) | E_arith (_, a, b) ->
    expr_free_vars a @ expr_free_vars b
  | E_slice (e, lo, hi) ->
    expr_free_vars e
    @ (match lo with Some e -> expr_free_vars e | None -> [])
    @ (match hi with Some e -> expr_free_vars e | None -> [])
  | E_case { case_subject; case_branches; case_default } ->
    (match case_subject with Some e -> expr_free_vars e | None -> [])
    @ List.concat_map
        (fun (w, t) -> expr_free_vars w @ expr_free_vars t)
        case_branches
    @ (match case_default with Some e -> expr_free_vars e | None -> [])
  | E_list_comp { lc_var; lc_source; lc_where; lc_body } ->
    expr_free_vars lc_source
    @ List.filter
        (fun v -> not (String.equal v lc_var))
        ((match lc_where with Some e -> expr_free_vars e | None -> [])
        @ match lc_body with Some e -> expr_free_vars e | None -> [])
  | E_quantified (_, x, src, pred) ->
    expr_free_vars src
    @ List.filter (fun v -> not (String.equal v x)) (expr_free_vars pred)
  | E_reduce { rd_acc; rd_init; rd_var; rd_list; rd_body } ->
    expr_free_vars rd_init @ expr_free_vars rd_list
    @ List.filter
        (fun v -> not (String.equal v rd_acc || String.equal v rd_var))
        (expr_free_vars rd_body)
  | E_map_projection (e, items) ->
    expr_free_vars e
    @ List.concat_map
        (function
          | Mp_property _ | Mp_all_properties -> []
          | Mp_literal (_, e) -> expr_free_vars e
          | Mp_variable v -> [ v ])
        items
  | E_pattern_pred p | E_exists_pattern p -> free_path_pattern p
  | E_pattern_comp { pc_pattern; pc_where; pc_body } ->
    let bound = free_path_pattern pc_pattern in
    free_path_pattern pc_pattern
    @ List.filter
        (fun v -> not (List.mem v bound))
        (expr_free_vars pc_body
        @ match pc_where with Some e -> expr_free_vars e | None -> [])
