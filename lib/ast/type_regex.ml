(* Thompson construction of a small NFA from a relationship-type
   regular expression, with on-the-fly ε-closure.  State sets are
   plain int sets; both the reference evaluator and the planner's
   product-graph operator step the same automaton, so the two engines
   agree on the recognised language by construction. *)

module Int_set = Set.Make (Int)

type states = Int_set.t

type nfa = {
  n_states : int;
  eps : int list array; (* ε-successors per state *)
  trans : (string * int) list array; (* labelled successors per state *)
  start_state : int;
  accept_state : int;
}

(* Thompson construction: every fragment has one entry and one exit
   state, composed with ε-edges. *)
let compile (re : Ast.type_regex) : nfa =
  let eps = ref [] and trans = ref [] and n = ref 0 in
  let fresh () =
    let s = !n in
    incr n;
    eps := (s, []) :: !eps;
    trans := (s, []) :: !trans;
    s
  in
  let add_eps a b = eps := (a, b :: List.assoc a !eps) :: List.remove_assoc a !eps in
  let add_trans a lbl b =
    trans := (a, (lbl, b) :: List.assoc a !trans) :: List.remove_assoc a !trans
  in
  let rec frag re =
    match re with
    | Ast.TR_type t ->
      let i = fresh () and o = fresh () in
      add_trans i t o;
      (i, o)
    | Ast.TR_seq rs ->
      (match rs with
      | [] ->
        let i = fresh () and o = fresh () in
        add_eps i o;
        (i, o)
      | first :: rest ->
        List.fold_left
          (fun (i, o) r ->
            let i', o' = frag r in
            add_eps o i';
            (i, o'))
          (frag first) rest)
    | Ast.TR_alt rs ->
      let i = fresh () and o = fresh () in
      List.iter
        (fun r ->
          let i', o' = frag r in
          add_eps i i';
          add_eps o' o)
        rs;
      (i, o)
    | Ast.TR_star r ->
      let i = fresh () and o = fresh () in
      let i', o' = frag r in
      add_eps i i';
      add_eps i o;
      add_eps o' i';
      add_eps o' o;
      (i, o)
    | Ast.TR_plus r -> frag (Ast.TR_seq [ r; Ast.TR_star r ])
    | Ast.TR_opt r ->
      let i, o = frag r in
      add_eps i o;
      (i, o)
  in
  let start_state, accept_state = frag re in
  let size = !n in
  let eps_arr = Array.make size [] and trans_arr = Array.make size [] in
  List.iter (fun (s, succs) -> eps_arr.(s) <- succs) !eps;
  List.iter (fun (s, succs) -> trans_arr.(s) <- succs) !trans;
  {
    n_states = size;
    eps = eps_arr;
    trans = trans_arr;
    start_state;
    accept_state;
  }

let state_count nfa = nfa.n_states

let closure nfa (set : states) : states =
  let rec go acc = function
    | [] -> acc
    | s :: rest ->
      if Int_set.mem s acc then go acc rest
      else go (Int_set.add s acc) (nfa.eps.(s) @ rest)
  in
  go Int_set.empty (Int_set.elements set)

let start nfa : states = closure nfa (Int_set.singleton nfa.start_state)

let accepting nfa (set : states) = Int_set.mem nfa.accept_state set

let is_empty = Int_set.is_empty

let compare_states = Int_set.compare

(* One transition of the subset simulation on relationship type [lbl]. *)
let step nfa (set : states) (lbl : string) : states =
  let direct =
    Int_set.fold
      (fun s acc ->
        List.fold_left
          (fun acc (l, s') -> if String.equal l lbl then Int_set.add s' acc else acc)
          acc nfa.trans.(s))
      set Int_set.empty
  in
  if Int_set.is_empty direct then direct else closure nfa direct

(* The set of relationship types that can advance [set] at all — used
   by the executors to filter adjacency before stepping. *)
let live_labels nfa (set : states) : string list =
  Int_set.fold
    (fun s acc ->
      List.fold_left
        (fun acc (l, _) -> if List.mem l acc then acc else l :: acc)
        acc nfa.trans.(s))
    set []

(* Whether the regex accepts the empty word (a zero-hop match). *)
let nullable nfa = accepting nfa (start nfa)
