open Ast

let pf = Format.fprintf

let pp_sep_str s ppf () = Format.pp_print_string ppf s
let comma = pp_sep_str ", "

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '\'' -> Buffer.add_string buf "\\'"
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_literal ppf = function
  | L_null -> Format.pp_print_string ppf "null"
  | L_bool b -> Format.pp_print_bool ppf b
  | L_int i -> Format.pp_print_int ppf i
  | L_float f ->
    if Float.is_integer f && Float.abs f < 1e15 then pf ppf "%.1f" f
    else pf ppf "%g" f
  | L_string s -> pf ppf "'%s'" (escape_string s)

let cmp_str = function
  | Lt -> "<"
  | Le -> "<="
  | Ge -> ">="
  | Gt -> ">"
  | Eq -> "="
  | Neq -> "<>"

let agg_str = function
  | Count -> "count"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"
  | Collect -> "collect"
  | Std_dev -> "stDev"
  | Std_dev_p -> "stDevP"

let quant_str = function
  | Q_all -> "all"
  | Q_any -> "any"
  | Q_none -> "none"
  | Q_single -> "single"

(* Precedence levels, loosest to tightest, mirroring the parser:
   or < xor < and < not < comparison < add/sub < mul/div/mod < pow <
   unary minus < postfix (property access, index, slice) < atom. *)
let rec pp_prec level ppf e =
  let paren wanted body =
    if level > wanted then pf ppf "(%t)" body else body ppf
  in
  match e with
  | E_or (a, b) ->
    paren 1 (fun ppf -> pf ppf "%a OR %a" (pp_prec 2) a (pp_prec 1) b)
  | E_xor (a, b) ->
    paren 2 (fun ppf -> pf ppf "%a XOR %a" (pp_prec 3) a (pp_prec 2) b)
  | E_and (a, b) ->
    paren 3 (fun ppf -> pf ppf "%a AND %a" (pp_prec 4) a (pp_prec 3) b)
  | E_not a -> paren 4 (fun ppf -> pf ppf "NOT %a" (pp_prec 4) a)
  | E_cmp (op, a, b) ->
    paren 5 (fun ppf -> pf ppf "%a %s %a" (pp_prec 6) a (cmp_str op) (pp_prec 6) b)
  | E_in (a, b) ->
    paren 5 (fun ppf -> pf ppf "%a IN %a" (pp_prec 6) a (pp_prec 6) b)
  | E_starts_with (a, b) ->
    paren 5 (fun ppf ->
        pf ppf "%a STARTS WITH %a" (pp_prec 6) a (pp_prec 6) b)
  | E_ends_with (a, b) ->
    paren 5 (fun ppf -> pf ppf "%a ENDS WITH %a" (pp_prec 6) a (pp_prec 6) b)
  | E_contains (a, b) ->
    paren 5 (fun ppf -> pf ppf "%a CONTAINS %a" (pp_prec 6) a (pp_prec 6) b)
  | E_regex_match (a, b) ->
    paren 5 (fun ppf -> pf ppf "%a =~ %a" (pp_prec 6) a (pp_prec 6) b)
  | E_is_null a -> paren 5 (fun ppf -> pf ppf "%a IS NULL" (pp_prec 6) a)
  | E_is_not_null a ->
    paren 5 (fun ppf -> pf ppf "%a IS NOT NULL" (pp_prec 6) a)
  | E_has_labels (a, ls) ->
    paren 5 (fun ppf ->
        pf ppf "%a%t" (pp_prec 9) a (fun ppf ->
            List.iter (fun l -> pf ppf ":%s" l) ls))
  | E_arith (Add, a, b) ->
    paren 6 (fun ppf -> pf ppf "%a + %a" (pp_prec 6) a (pp_prec 7) b)
  | E_arith (Sub, a, b) ->
    paren 6 (fun ppf -> pf ppf "%a - %a" (pp_prec 6) a (pp_prec 7) b)
  | E_arith (Mul, a, b) ->
    paren 7 (fun ppf -> pf ppf "%a * %a" (pp_prec 7) a (pp_prec 8) b)
  | E_arith (Div, a, b) ->
    paren 7 (fun ppf -> pf ppf "%a / %a" (pp_prec 7) a (pp_prec 8) b)
  | E_arith (Mod, a, b) ->
    paren 7 (fun ppf -> pf ppf "%a %% %a" (pp_prec 7) a (pp_prec 8) b)
  | E_arith (Pow, a, b) ->
    paren 8 (fun ppf -> pf ppf "%a ^ %a" (pp_prec 9) a (pp_prec 8) b)
  | E_neg a -> paren 9 (fun ppf -> pf ppf "-%a" (pp_prec 9) a)
  | E_prop (a, k) -> paren 10 (fun ppf -> pf ppf "%a.%s" (pp_prec 10) a k)
  | E_index (a, i) ->
    paren 10 (fun ppf -> pf ppf "%a[%a]" (pp_prec 10) a (pp_prec 0) i)
  | E_slice (a, lo, hi) ->
    paren 10 (fun ppf ->
        pf ppf "%a[%t..%t]" (pp_prec 10) a
          (fun ppf -> Option.iter (pp_prec 0 ppf) lo)
          (fun ppf -> Option.iter (pp_prec 0 ppf) hi))
  | E_lit l -> pp_literal ppf l
  | E_var a -> Format.pp_print_string ppf a
  | E_param p -> pf ppf "$%s" p
  | E_map kvs ->
    pf ppf "{%a}"
      (Format.pp_print_list ~pp_sep:comma (fun ppf (k, v) ->
           pf ppf "%s: %a" k (pp_prec 0) v))
      kvs
  | E_list es ->
    (* a singleton [x IN y] would re-parse as a comprehension binding x,
       so the membership test is parenthesized *)
    let pp_elem ppf e =
      match e with
      | E_in (E_var _, _) -> pf ppf "(%a)" (pp_prec 0) e
      | _ -> pp_prec 0 ppf e
    in
    pf ppf "[%a]" (Format.pp_print_list ~pp_sep:comma pp_elem) es
  | E_fn (f, args) ->
    pf ppf "%s(%a)" f (Format.pp_print_list ~pp_sep:comma (pp_prec 0)) args
  | E_count_star -> Format.pp_print_string ppf "count(*)"
  | E_agg (fn, distinct, e) ->
    pf ppf "%s(%s%a)" (agg_str fn)
      (if distinct then "DISTINCT " else "")
      (pp_prec 0) e
  | E_agg_percentile (cont, distinct, v, p) ->
    pf ppf "%s(%s%a, %a)"
      (if cont then "percentileCont" else "percentileDisc")
      (if distinct then "DISTINCT " else "")
      (pp_prec 0) v (pp_prec 0) p
  | E_case { case_subject; case_branches; case_default } ->
    pf ppf "CASE";
    Option.iter (fun s -> pf ppf " %a" (pp_prec 0) s) case_subject;
    List.iter
      (fun (w, t) -> pf ppf " WHEN %a THEN %a" (pp_prec 0) w (pp_prec 0) t)
      case_branches;
    Option.iter (fun d -> pf ppf " ELSE %a" (pp_prec 0) d) case_default;
    pf ppf " END"
  | E_list_comp { lc_var; lc_source; lc_where; lc_body } ->
    pf ppf "[%s IN %a" lc_var (pp_prec 0) lc_source;
    Option.iter (fun w -> pf ppf " WHERE %a" (pp_prec 0) w) lc_where;
    Option.iter (fun b -> pf ppf " | %a" (pp_prec 0) b) lc_body;
    pf ppf "]"
  | E_map_projection (e, items) ->
    paren 10 (fun ppf ->
        pf ppf "%a {%a}" (pp_prec 10) e
          (Format.pp_print_list ~pp_sep:comma (fun ppf item ->
               match item with
               | Mp_property k -> pf ppf ".%s" k
               | Mp_all_properties -> Format.pp_print_string ppf ".*"
               | Mp_literal (k, e) -> pf ppf "%s: %a" k (pp_prec 0) e
               | Mp_variable v -> Format.pp_print_string ppf v))
          items)
  | E_pattern_pred p -> pp_path_pattern ppf p
  | E_pattern_comp { pc_pattern; pc_where; pc_body } ->
    pf ppf "[%a" pp_path_pattern pc_pattern;
    Option.iter (fun w -> pf ppf " WHERE %a" (pp_prec 0) w) pc_where;
    pf ppf " | %a]" (pp_prec 0) pc_body
  | E_exists_pattern p -> pf ppf "exists(%a)" pp_path_pattern p
  | E_quantified (q, x, src, pred) ->
    pf ppf "%s(%s IN %a WHERE %a)" (quant_str q) x (pp_prec 0) src (pp_prec 0)
      pred
  | E_reduce { rd_acc; rd_init; rd_var; rd_list; rd_body } ->
    pf ppf "reduce(%s = %a, %s IN %a | %a)" rd_acc (pp_prec 0) rd_init rd_var
      (pp_prec 0) rd_list (pp_prec 0) rd_body

and pp_props ppf props =
  if props <> [] then
    pf ppf " {%a}"
      (Format.pp_print_list ~pp_sep:comma (fun ppf (k, v) ->
           pf ppf "%s: %a" k (pp_prec 0) v))
      props

and pp_node_pattern ppf np =
  pf ppf "(%t%t%t)"
    (fun ppf -> Option.iter (Format.pp_print_string ppf) np.np_name)
    (fun ppf -> List.iter (fun l -> pf ppf ":%s" l) np.np_labels)
    (fun ppf ->
      if np.np_props <> [] then (
        if np.np_name <> None || np.np_labels <> [] then
          Format.pp_print_string ppf " ";
        pf ppf "{%a}"
          (Format.pp_print_list ~pp_sep:comma (fun ppf (k, v) ->
               pf ppf "%s: %a" k (pp_prec 0) v))
          np.np_props))

and pp_len ppf = function
  | { len_min = None; len_max = None } -> Format.pp_print_string ppf "*"
  | { len_min = Some m; len_max = Some n } when m = n -> pf ppf "*%d" m
  | { len_min = Some m; len_max = None } -> pf ppf "*%d.." m
  | { len_min = None; len_max = Some n } -> pf ppf "*..%d" n
  | { len_min = Some m; len_max = Some n } -> pf ppf "*%d..%d" m n

and pp_rel_pattern ppf rp =
  let body ppf =
    let empty =
      rp.rp_name = None && rp.rp_types = [] && rp.rp_len = None
      && rp.rp_props = [] && rp.rp_regex = None
    in
    if not empty then (
      Format.pp_print_string ppf "[";
      Option.iter (Format.pp_print_string ppf) rp.rp_name;
      (match rp.rp_regex with
      | Some re ->
        (* the regex form always starts with a group, which is what
           distinguishes it from a plain type list in the parser *)
        pf ppf ":(%s)" (regex_to_string re)
      | None ->
        (match rp.rp_types with
        | [] -> ()
        | t :: ts ->
          pf ppf ":%s" t;
          List.iter (fun t -> pf ppf "|%s" t) ts));
      Option.iter (pp_len ppf) rp.rp_len;
      pp_props ppf rp.rp_props;
      Format.pp_print_string ppf "]")
  in
  match rp.rp_dir with
  | Left_to_right -> pf ppf "-%t->" body
  | Right_to_left -> pf ppf "<-%t-" body
  | Undirected -> pf ppf "-%t-" body

and pp_path_pattern ppf pp =
  Option.iter (fun a -> pf ppf "%s = " a) pp.pp_name;
  (match pp.pp_restr with
  | Walk -> ()
  | Trail -> Format.pp_print_string ppf "TRAIL "
  | Acyclic -> Format.pp_print_string ppf "ACYCLIC ");
  (match pp.pp_shortest with
  | No_shortest -> ()
  | Shortest -> Format.pp_print_string ppf "shortestPath("
  | All_shortest -> Format.pp_print_string ppf "allShortestPaths("
  | Cheapest _ -> Format.pp_print_string ppf "cheapestPath(");
  pp_node_pattern ppf pp.pp_first;
  List.iter
    (fun (rp, np) -> pf ppf "%a%a" pp_rel_pattern rp pp_node_pattern np)
    pp.pp_rest;
  match pp.pp_shortest with
  | No_shortest -> ()
  | Shortest | All_shortest -> Format.pp_print_string ppf ")"
  | Cheapest prop -> pf ppf ", '%s')" prop

let pp_expr ppf e = pp_prec 0 ppf e
let expr_to_string e = Format.asprintf "%a" pp_expr e

let pp_pattern_tuple ppf pps =
  Format.pp_print_list ~pp_sep:comma pp_path_pattern ppf pps

let pp_ret_item ppf { ri_expr; ri_alias } =
  match ri_alias with
  | None -> pp_expr ppf ri_expr
  | Some a -> pf ppf "%a AS %s" pp_expr ri_expr a

let pp_projection ~kw ppf p =
  pf ppf "%s%s " kw (if p.pj_distinct then " DISTINCT" else "");
  let items ppf =
    Format.pp_print_list ~pp_sep:comma pp_ret_item ppf p.pj_items
  in
  (if p.pj_star then
     if p.pj_items = [] then Format.pp_print_string ppf "*"
     else pf ppf "*, %t" items
   else items ppf);
  if p.pj_order_by <> [] then
    pf ppf " ORDER BY %a"
      (Format.pp_print_list ~pp_sep:comma (fun ppf (e, dir) ->
           pf ppf "%a%s" pp_expr e
             (match dir with Asc -> "" | Desc -> " DESC")))
      p.pj_order_by;
  Option.iter (fun e -> pf ppf " SKIP %a" pp_expr e) p.pj_skip;
  Option.iter (fun e -> pf ppf " LIMIT %a" pp_expr e) p.pj_limit

let pp_set_item ppf = function
  | S_prop (e, k, v) -> pf ppf "%a.%s = %a" pp_expr e k pp_expr v
  | S_all_props (a, e) -> pf ppf "%s = %a" a pp_expr e
  | S_merge_props (a, e) -> pf ppf "%s += %a" a pp_expr e
  | S_labels (a, ls) ->
    pf ppf "%s%t" a (fun ppf -> List.iter (fun l -> pf ppf ":%s" l) ls)

let pp_remove_item ppf = function
  | R_prop (e, k) -> pf ppf "%a.%s" pp_expr e k
  | R_labels (a, ls) ->
    pf ppf "%s%t" a (fun ppf -> List.iter (fun l -> pf ppf ":%s" l) ls)

let rec pp_clause ppf = function
  | C_foreach { fe_var; fe_list; fe_clauses } ->
    pf ppf "FOREACH (%s IN %a | %a)" fe_var pp_expr fe_list
      (Format.pp_print_list ~pp_sep:(pp_sep_str " ") pp_clause)
      fe_clauses
  | C_call { proc; args; yield_ } ->
    pf ppf "CALL %s(%a)" proc
      (Format.pp_print_list ~pp_sep:comma pp_expr)
      args;
    if yield_ <> [] then
      pf ppf " YIELD %a"
        (Format.pp_print_list ~pp_sep:comma (fun ppf (c, alias) ->
             match alias with
             | None -> Format.pp_print_string ppf c
             | Some a -> pf ppf "%s AS %s" c a))
        yield_
  | C_match { opt; pattern; where } ->
    pf ppf "%sMATCH %a" (if opt then "OPTIONAL " else "") pp_pattern_tuple
      pattern;
    Option.iter (fun w -> pf ppf " WHERE %a" pp_expr w) where
  | C_with { proj; where } ->
    pp_projection ~kw:"WITH" ppf proj;
    Option.iter (fun w -> pf ppf " WHERE %a" pp_expr w) where
  | C_unwind (e, a) -> pf ppf "UNWIND %a AS %s" pp_expr e a
  | C_create pattern -> pf ppf "CREATE %a" pp_pattern_tuple pattern
  | C_delete { detach; exprs } ->
    pf ppf "%sDELETE %a"
      (if detach then "DETACH " else "")
      (Format.pp_print_list ~pp_sep:comma pp_expr)
      exprs
  | C_set items ->
    pf ppf "SET %a" (Format.pp_print_list ~pp_sep:comma pp_set_item) items
  | C_remove items ->
    pf ppf "REMOVE %a"
      (Format.pp_print_list ~pp_sep:comma pp_remove_item)
      items
  | C_merge { pattern; on_create; on_match } ->
    pf ppf "MERGE %a" pp_path_pattern pattern;
    if on_match <> [] then
      pf ppf " ON MATCH SET %a"
        (Format.pp_print_list ~pp_sep:comma pp_set_item)
        on_match;
    if on_create <> [] then
      pf ppf " ON CREATE SET %a"
        (Format.pp_print_list ~pp_sep:comma pp_set_item)
        on_create

let rec pp_query ppf = function
  | Q_single { sq_clauses; sq_return } ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
      pp_clause ppf sq_clauses;
    Option.iter
      (fun p ->
        if sq_clauses <> [] then Format.pp_print_string ppf " ";
        pp_projection ~kw:"RETURN" ppf p)
      sq_return
  | Q_union (q1, q2) -> pf ppf "%a UNION %a" pp_query q1 pp_query q2
  | Q_union_all (q1, q2) -> pf ppf "%a UNION ALL %a" pp_query q1 pp_query q2

let query_to_string q = Format.asprintf "%a" pp_query q
