open Cypher_values

(* Rows live in a shared growable buffer.  A table is a [off, off+len)
   window over the buffer's array; [frontier] marks how many slots of the
   buffer have been claimed by some table.  [add_row] writes in place at
   the frontier when this table ends exactly there (the common
   row-at-a-time construction chain), so a linear sequence of appends
   costs amortised O(1) per row instead of the O(n²) of list append;
   appending to a table whose frontier was already claimed by a sibling
   copies first, which preserves persistence. *)
type buffer = { mutable data : Record.t array; mutable frontier : int }

type t = {
  table_fields : string list;
  buf : buffer;
  off : int;
  len : int;
}

let normalize_fields fields = List.sort_uniq String.compare fields

let check_uniform fields row =
  if not (List.equal String.equal (Record.dom row) fields) then
    invalid_arg
      (Format.asprintf "Table: row %a does not match fields [%s]" Record.pp row
         (String.concat "; " fields))

let of_array ~fields data =
  { table_fields = fields; buf = { data; frontier = Array.length data }; off = 0;
    len = Array.length data }

let create ~fields rows =
  let fields = normalize_fields fields in
  List.iter (check_uniform fields) rows;
  of_array ~fields (Array.of_list rows)

let unit = of_array ~fields:[] [| Record.empty |]
let empty ~fields = of_array ~fields:(normalize_fields fields) [||]
let fields t = t.table_fields
let row_count t = t.len
let is_empty t = t.len = 0

let get t i = t.buf.data.(t.off + i)

let rows t = List.init t.len (get t)
let to_seq t = Seq.init t.len (get t)

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let fold_left f init t =
  let acc = ref init in
  iter (fun row -> acc := f !acc row) t;
  !acc

let add_row t row =
  check_uniform t.table_fields row;
  let b = t.buf in
  let end_ = t.off + t.len in
  if b.frontier = end_ then begin
    if end_ = Array.length b.data then begin
      let data = Array.make (max 8 (2 * Array.length b.data)) Record.empty in
      Array.blit b.data 0 data 0 end_;
      b.data <- data
    end;
    b.data.(end_) <- row;
    b.frontier <- end_ + 1;
    { t with len = t.len + 1 }
  end
  else begin
    (* a sibling table already claimed the frontier: copy this window *)
    let data = Array.make (max 8 (2 * (t.len + 1))) Record.empty in
    Array.blit b.data t.off data 0 t.len;
    data.(t.len) <- row;
    { t with buf = { data; frontier = t.len + 1 }; off = 0; len = t.len + 1 }
  end

let union t1 t2 =
  if not (List.equal String.equal t1.table_fields t2.table_fields) then
    invalid_arg "Table.union: field mismatch";
  let data = Array.make (t1.len + t2.len) Record.empty in
  Array.blit t1.buf.data t1.off data 0 t1.len;
  Array.blit t2.buf.data t2.off data t1.len t2.len;
  of_array ~fields:t1.table_fields data

(* Growable accumulator for operations whose output size is unknown. *)
module Acc = struct
  type acc = { mutable arr : Record.t array; mutable n : int }

  let make () = { arr = Array.make 16 Record.empty; n = 0 }

  let push a row =
    if a.n = Array.length a.arr then begin
      let arr = Array.make (2 * a.n) Record.empty in
      Array.blit a.arr 0 arr 0 a.n;
      a.arr <- arr
    end;
    a.arr.(a.n) <- row;
    a.n <- a.n + 1

  let contents a = Array.sub a.arr 0 a.n
end

let of_seq ~fields seq =
  let fields = normalize_fields fields in
  let acc = Acc.make () in
  Seq.iter
    (fun row ->
      check_uniform fields row;
      Acc.push acc row)
    seq;
  of_array ~fields (Acc.contents acc)

let concat_map t f ~fields =
  let fields = normalize_fields fields in
  let acc = Acc.make () in
  iter
    (fun row ->
      List.iter
        (fun out ->
          check_uniform fields out;
          Acc.push acc out)
        (f row))
    t;
  of_array ~fields (Acc.contents acc)

let dedup t =
  let seen = Hashtbl.create 64 in
  let keep row =
    let h = Record.hash row in
    let bucket = try Hashtbl.find seen h with Not_found -> [] in
    if List.exists (Record.equal row) bucket then false
    else (
      Hashtbl.replace seen h (row :: bucket);
      true)
  in
  let acc = Acc.make () in
  iter (fun row -> if keep row then Acc.push acc row) t;
  of_array ~fields:t.table_fields (Acc.contents acc)

let filter t p =
  let acc = Acc.make () in
  iter (fun row -> if p row then Acc.push acc row) t;
  of_array ~fields:t.table_fields (Acc.contents acc)

let sort t ~by =
  let data = Array.sub t.buf.data t.off t.len in
  Array.stable_sort by data;
  of_array ~fields:t.table_fields data

(* skip and limit only move the window boundaries: O(1). *)
let skip t n =
  let k = min t.len (max 0 n) in
  { t with off = t.off + k; len = t.len - k }

let limit t n = { t with len = min t.len (max 0 n) }

(* A morsel for the parallel executor: a [off, off+len) window narrowed
   further, sharing the buffer.  O(1) and safe to read from several
   domains at once — windows never write, and rows are immutable. *)
let sub t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then
    invalid_arg "Table.sub: window out of range";
  { t with off = t.off + off; len }

let concat ~fields ts =
  let fields = normalize_fields fields in
  let total = List.fold_left (fun n t -> n + t.len) 0 ts in
  let data = Array.make total Record.empty in
  let pos = ref 0 in
  List.iter
    (fun t ->
      if not (List.equal String.equal t.table_fields fields) then
        invalid_arg "Table.concat: field mismatch";
      Array.blit t.buf.data t.off data !pos t.len;
      pos := !pos + t.len)
    ts;
  of_array ~fields data

let group_by t ~key =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  iter
    (fun row ->
      let k = key row in
      let h = Hashtbl.hash (List.map Value.hash k) in
      let bucket = try Hashtbl.find tbl h with Not_found -> [] in
      match
        List.find_opt (fun (k', _) -> List.equal Value.equal_total k k') bucket
      with
      | Some (_, cell) -> cell := row :: !cell
      | None ->
        let cell = ref [ row ] in
        Hashtbl.replace tbl h ((k, cell) :: bucket);
        order := (k, cell) :: !order)
    t;
  List.rev_map (fun (k, cell) -> (k, List.rev !cell)) !order

let bag_equal t1 t2 =
  List.equal String.equal t1.table_fields t2.table_fields
  && t1.len = t2.len
  &&
  let sorted t =
    let data = Array.sub t.buf.data t.off t.len in
    Array.sort Record.compare data;
    data
  in
  let a1 = sorted t1 and a2 = sorted t2 in
  let rec go i = i >= t1.len || (Record.equal a1.(i) a2.(i) && go (i + 1)) in
  go 0

let equal_ordered t1 t2 =
  List.equal String.equal t1.table_fields t2.table_fields
  && t1.len = t2.len
  &&
  let rec go i = i >= t1.len || (Record.equal (get t1 i) (get t2 i) && go (i + 1)) in
  go 0

let render ~columns t =
  let cell row c =
    match Record.find row c with
    | Some v -> Format.asprintf "%a" Value.pp_plain v
    | None -> ""
  in
  let all_rows = List.map (fun r -> List.map (cell r) columns) (rows t) in
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun w cells -> max w (String.length (List.nth cells i)))
          (String.length c) all_rows)
      columns
  in
  let line parts =
    String.concat " | "
      (List.map2 (fun w s -> s ^ String.make (max 0 (w - String.length s)) ' ') widths parts)
  in
  let sep = String.concat "-+-" (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line columns :: sep :: List.map line all_rows)

let pp_with ~columns ppf t = Format.pp_print_string ppf (render ~columns t)

let pp ppf t =
  if t.table_fields = [] then
    Format.fprintf ppf "(no fields; %d row(s))" (row_count t)
  else pp_with ~columns:t.table_fields ppf t

let to_string t = Format.asprintf "%a" pp t
