(** Tables: bags (multisets) of uniform records (paper, Section 4.1).

    "If A is a set of names, then a table with fields A is a bag, or
    multiset, of records u such that dom(u) = A."  [T ⊎ T'] is bag union
    (multiplicities add); [ε(T)] is duplicate elimination.

    Rows are kept in a deterministic order (insertion order) because real
    Cypher implementations are order-preserving and the paper's worked
    examples print rows in a specific order; bag equality is also
    provided for order-insensitive comparison. *)

open Cypher_values

type t

val unit : t
(** [T()]: the table containing the single empty record — the starting
    point of query evaluation (Section 4). *)

val empty : fields:string list -> t
(** No rows at all. *)

val create : fields:string list -> Record.t list -> t
(** Raises [Invalid_argument] if some row's domain differs from
    [fields]. *)

val fields : t -> string list
(** Sorted field names. *)

val rows : t -> Record.t list
val to_seq : t -> Record.t Seq.t
val row_count : t -> int
val is_empty : t -> bool

val iter : (Record.t -> unit) -> t -> unit
val fold_left : ('a -> Record.t -> 'a) -> 'a -> t -> 'a

val add_row : t -> Record.t -> t
(** Appends; the row must be uniform with the table.  A linear chain of
    appends runs in amortised O(1) per row (rows are written into a
    shared pre-sized buffer); appending to an older version of a table
    copies its window first. *)

val of_seq : fields:string list -> Record.t Seq.t -> t
(** Materialises a row stream into a table, checking uniformity row by
    row — the executor's sink, with no intermediate list. *)

val union : t -> t -> t
(** [T ⊎ T']: bag union.  Both tables must have the same fields.
    O(|T| + |T'|). *)

val concat_map : t -> (Record.t -> Record.t list) -> fields:string list -> t
(** The workhorse for clause semantics: maps every row to a bag of rows
    over the new field set and takes the bag union. *)

val dedup : t -> t
(** [ε(T)]: keeps the first occurrence of each distinct row (equality by
    {!Record.equal}, under which null = null). *)

val filter : t -> (Record.t -> bool) -> t

val sort : t -> by:(Record.t -> Record.t -> int) -> t
(** Stable sort — ORDER BY must preserve the relative order of ties. *)

val skip : t -> int -> t
(** Drops the first [n] rows (all of them when [n] exceeds the row
    count, none when [n <= 0]).  O(1): only the window moves. *)

val limit : t -> int -> t
(** Keeps the first [n] rows.  O(1). *)

val sub : t -> off:int -> len:int -> t
(** The window [off, off+len) of the table, sharing the underlying row
    buffer — O(1).  The parallel executor slices its input into morsels
    with this; reading the slices from several domains concurrently is
    safe because windows never mutate the buffer.  Raises
    [Invalid_argument] when the window exceeds the table. *)

val concat : fields:string list -> t list -> t
(** Ordered bag union of any number of tables (the merge of per-morsel
    results): rows appear in list order, then row order.  All tables
    must have exactly the given fields. *)

val group_by : t -> key:(Record.t -> Value.t list) -> (Value.t list * Record.t list) list
(** Groups rows by key (using {!Value.compare_total} on key vectors);
    groups appear in order of first occurrence, rows keep table order. *)

val bag_equal : t -> t -> bool
(** Same fields and same rows with the same multiplicities, order
    ignored. *)

val equal_ordered : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Renders the table the way the paper's figures do: a header row of
    field names and one line per record, strings unquoted. *)

val pp_with : columns:string list -> Format.formatter -> t -> unit
(** Like {!pp} but with an explicit column order (the paper prints fields
    in query order, not alphabetically). *)

val to_string : t -> string
