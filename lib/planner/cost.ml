open Cypher_graph

type estimate = { rows : float; cost : float }

let filter_selectivity = 0.5

let dir_to_expand = function
  | Plan.Out -> `Out
  | Plan.In -> `In
  | Plan.Both -> `Both

(* Expected output rows of one operator given the input row estimate. *)
let rec rows_of stats plan : float =
  let input_rows p =
    match Plan.input_of p with Some i -> rows_of stats i | None -> 1.
  in
  match plan with
  | Plan.Argument -> 1.
  | Plan.All_nodes_scan _ -> input_rows plan *. Stats.node_count stats
  | Plan.Node_by_label_scan { label; _ } ->
    input_rows plan *. Float.max 1. (Stats.label_cardinality stats label)
  | Plan.Rel_type_scan { types; dir; _ } ->
    let per_type t = Stats.rel_count stats *. Stats.type_selectivity stats t in
    let total = List.fold_left (fun acc t -> acc +. per_type t) 0. types in
    let total = if dir = Plan.Both then 2. *. total else total in
    input_rows plan *. Float.max 1. total
  | Plan.Node_index_seek { label; _ } ->
    input_rows plan
    *. Float.max 1.
         (Stats.label_cardinality stats label *. Stats.prop_selectivity stats)
  | Plan.Expand { dir; types; _ } ->
    input_rows plan
    *. Float.max 0.1
         (Stats.estimate_expand stats ~direction:(dir_to_expand dir)
            ~rel_types:types)
  | Plan.Var_expand { dir; types; min_len; max_len; _ } ->
    let fanout =
      Float.max 0.1
        (Stats.estimate_expand stats ~direction:(dir_to_expand dir)
           ~rel_types:types)
    in
    let max_len =
      match max_len with
      | Some n -> n
      | None -> int_of_float (Float.min 8. (Stats.rel_count stats))
    in
    (* geometric sum of fanout^k for k in [min_len, max_len] *)
    let rec sum k acc pow =
      if k > max_len then acc
      else
        let pow = pow *. fanout in
        sum (k + 1) (if k >= min_len then acc +. pow else acc) pow
    in
    input_rows plan *. Float.max 0.1 (sum 1 (if min_len = 0 then 1. else 0.) 1.)
  | Plan.Filter _ -> input_rows plan *. filter_selectivity
  | Plan.Project _ | Plan.Project_path _ -> input_rows plan
  | Plan.Aggregate { keys; _ } ->
    if keys = [] then 1. else Float.max 1. (sqrt (input_rows plan))
  | Plan.Distinct _ -> Float.max 1. (input_rows plan *. 0.8)
  | Plan.Sort _ -> input_rows plan
  | Plan.Skip_rows _ -> Float.max 0. (input_rows plan -. 1.)
  | Plan.Limit_rows { count; _ } -> (
    match count with
    | Cypher_ast.Ast.E_lit (Cypher_ast.Ast.L_int n) ->
      Float.min (float_of_int n) (input_rows plan)
    | _ -> Float.min 10. (input_rows plan))
  | Plan.Unwind _ ->
    (* lists are assumed small *)
    input_rows plan *. 5.
  | Plan.Optional { inner; _ } ->
    (* at least one row per driving row *)
    Float.max (input_rows plan) (input_rows plan *. rows_of stats inner)
  | Plan.Rel_uniqueness _ -> input_rows plan *. 0.9
  | Plan.Regex_expand { dir; _ } ->
    (* like an unbounded variable-length expand: the automaton prunes,
       but the closure depth is unknown *)
    let fanout =
      Float.max 0.1
        (Stats.estimate_expand stats ~direction:(dir_to_expand dir)
           ~rel_types:[])
    in
    let max_len = int_of_float (Float.min 8. (Stats.rel_count stats)) in
    let rec sum k acc pow =
      if k > max_len then acc
      else
        let pow = pow *. fanout in
        sum (k + 1) (acc +. pow) pow
    in
    input_rows plan *. Float.max 0.1 (sum 1 1. 1.)
  | Plan.Shortest_path { all; _ } ->
    (* at most one path per driving row; allShortestPaths may tie *)
    input_rows plan *. if all then 2. else 1.
  | Plan.Cheapest_path _ -> input_rows plan
  | Plan.Path_restrict _ -> input_rows plan *. 0.9

and cost_of stats plan : float =
  let self = rows_of stats plan in
  let child_cost =
    match Plan.input_of plan with Some i -> cost_of stats i | None -> 0.
  in
  let inner_cost =
    match plan with
    | Plan.Optional { inner; input; _ } ->
      rows_of stats input *. cost_of stats inner
    | _ -> 0.
  in
  child_cost +. inner_cost +. self

let estimate stats plan = { rows = rows_of stats plan; cost = cost_of stats plan }

let annotate stats plan =
  let rec collect plan acc =
    let acc = (plan, estimate stats plan) :: acc in
    match Plan.input_of plan with
    | Some input -> collect input acc
    | None -> acc
  in
  List.rev (collect plan [])

let explain_with_estimates stats plan =
  Format.asprintf "%a"
    (Plan.pp_annotated ~annotate:(fun node ->
         Printf.sprintf "  (est. %.1f rows)" (rows_of stats node)))
    plan
