open Cypher_values
open Cypher_graph
open Cypher_table
open Cypher_semantics

let eval_error = Functions.eval_error

let node_of row var =
  match Record.find row var with
  | Some (Value.Node n) -> Some n
  | Some Value.Null | None -> None
  | Some v ->
    eval_error "expand: %s is bound to %s, not a node" var (Value.type_name v)

(* Binds [var] to [v] in [row], or keeps the row only when the existing
   binding agrees (Expand-into behaviour). *)
let bind_or_check row var v =
  match Record.find row var with
  | None -> Some (Record.add row var v)
  | Some v0 -> if Value.equal_total v0 v then Some row else None

let seq_filter_map_concat f seq = Seq.concat_map f seq

let expand_candidates g ~scan_rels ~dir n =
  if not scan_rels then
    (* One adjacency-list traversal per direction, one [rel_data] lookup
       per candidate — no intermediate list assembly. *)
    match dir with
    | Plan.Out -> List.map (fun r -> (r, Graph.tgt g r)) (Graph.out_rels g n)
    | Plan.In -> List.map (fun r -> (r, Graph.src g r)) (Graph.in_rels g n)
    | Plan.Both ->
      let out = List.map (fun r -> (r, Graph.tgt g r)) (Graph.out_rels g n) in
      let inc =
        (* loops already appear among the outgoing candidates *)
        List.filter_map
          (fun r ->
            let s = Graph.src g r in
            if Ids.equal_node s n then None else Some (r, s))
          (Graph.in_rels g n)
      in
      out @ inc
  else
    (* Baseline without adjacency locality: scan every relationship in
       the graph and keep the incident ones. *)
    List.filter_map
      (fun r ->
        let s = Graph.src g r and t = Graph.tgt g r in
        match dir with
        | Plan.Out -> if Ids.equal_node s n then Some (r, t) else None
        | Plan.In -> if Ids.equal_node t n then Some (r, s) else None
        | Plan.Both ->
          if Ids.equal_node s n then Some (r, t)
          else if Ids.equal_node t n then Some (r, s)
          else None)
      (Graph.rels g)

(* A sequence whose computation is deferred until first demanded. *)
let delayed (f : unit -> 'a Seq.t) : 'a Seq.t = fun () -> f () ()

(* Bag grouping over plain record lists (rows out of different operator
   branches need not be uniform, so this bypasses Table's field check). *)
let group_rows rows ~key =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun row ->
      let k = key row in
      let h = Hashtbl.hash (List.map Value.hash k) in
      let bucket = try Hashtbl.find tbl h with Not_found -> [] in
      match
        List.find_opt (fun (k', _) -> List.equal Value.equal_total k k') bucket
      with
      | Some (_, cell) -> cell := row :: !cell
      | None ->
        let cell = ref [ row ] in
        Hashtbl.replace tbl h ((k, cell) :: bucket);
        order := (k, cell) :: !order)
    rows;
  List.rev_map (fun (k, cell) -> (k, List.rev !cell)) !order

let rel_ids_of_binding row = function
  | Plan.Single_rel var -> (
    match Record.find row var with
    | Some (Value.Rel r) -> [ r ]
    | _ -> [])
  | Plan.Rel_list var -> (
    match Record.find row var with
    | Some (Value.List vs) ->
      List.filter_map (function Value.Rel r -> Some r | _ -> None) vs
    | _ -> [])

(* --- path-finding operators ------------------------------------------ *)

module Type_regex = Cypher_ast.Type_regex

let var_cap cfg g =
  match cfg.Config.var_length_cap with
  | Some c -> c
  | None -> Graph.rel_count g

let flip_plan_dir = function
  | Plan.Out -> Plan.In
  | Plan.In -> Plan.Out
  | Plan.Both -> Plan.Both

(* Whether the steps of a completed path, starting at [start], satisfy
   the GQL path restrictor — the mirror of the reference engine's
   check. *)
let restr_ok restr start steps =
  match restr with
  | Cypher_ast.Ast.Walk -> true
  | Cypher_ast.Ast.Trail ->
    let rec dup seen = function
      | [] -> false
      | (r, _) :: rest ->
        Ids.Rel_set.mem r seen || dup (Ids.Rel_set.add r seen) rest
    in
    not (dup Ids.Rel_set.empty steps)
  | Cypher_ast.Ast.Acyclic ->
    let rec dup seen = function
      | [] -> false
      | (_, n) :: rest ->
        Ids.Node_set.mem n seen || dup (Ids.Node_set.add n seen) rest
    in
    not (dup (Ids.Node_set.singleton start) steps)

(* The filtered adjacency shared by the path searches: direction, type
   filter and relationship property predicates, with the reference
   engine's typed error when a predicate references a variable that is
   not bound. *)
let search_neighbours cfg g row ~types ~props ~dir cur =
  let cands =
    match dir with
    | Plan.Out -> List.map (fun r -> (r, Graph.tgt g r)) (Graph.out_rels g cur)
    | Plan.In -> List.map (fun r -> (r, Graph.src g r)) (Graph.in_rels g cur)
    | Plan.Both ->
      List.map (fun r -> (r, Graph.other_end g r cur)) (Graph.all_rels_of g cur)
  in
  List.filter
    (fun (r, _) ->
      (types = [] || List.mem (Graph.rel_type g r) types)
      && List.for_all
           (fun (k, e) ->
             match Eval.eval_expr cfg g row e with
             | expected ->
               Ternary.is_true
                 (Value.equal_ternary (Graph.rel_prop g r k) expected)
             | exception Functions.Eval_error _ ->
               eval_error
                 "shortest-path relationship predicate on '%s' references an \
                  unbound variable"
                 k)
           props)
    cands

(* Exhaustive iterative deepening over walk lengths, used where per-node
   visited marking is unsound: the cyclic case s = e, and kmin > 1 where
   the minimal valid walk may revisit a node.  Identical to the
   reference engine's, so the surviving candidate is the same. *)
let deepening_steps neighbours s e ~kmin ~kmax ~all =
  let found = ref [] in
  let l = ref (max 1 kmin) in
  while !found = [] && !l <= kmax do
    let target_len = !l in
    let rec dfs used cur depth steps_rev =
      if depth = target_len then begin
        if Ids.equal_node cur e then found := List.rev steps_rev :: !found
      end
      else
        List.iter
          (fun (r, next) ->
            if not (Ids.Rel_set.mem r used) then
              dfs (Ids.Rel_set.add r used) next (depth + 1)
                ((r, next) :: steps_rev))
          (neighbours cur)
    in
    dfs Ids.Rel_set.empty s 0 [];
    incr l
  done;
  match !found, all with
  | [], _ -> []
  | paths, true -> List.rev paths
  | p :: _, false -> [ p ]

(* Level-synchronised BFS returning every minimal-length path — the
   reference engine's allShortestPaths search, ported so the produced
   multiset is identical. *)
let bfs_all_shortest neighbours s e ~kmax =
  let visited = ref (Ids.Node_set.singleton s) in
  let rec level depth frontier =
    if depth >= kmax || frontier = [] then []
    else begin
      let expansions =
        List.concat_map
          (fun (cur, steps_rev) ->
            List.filter_map
              (fun (r, next) ->
                if Ids.Node_set.mem next !visited then None
                else Some (next, (r, next) :: steps_rev))
              (neighbours cur))
          frontier
      in
      let completions =
        List.filter_map
          (fun (n, steps_rev) ->
            if Ids.equal_node n e then Some (List.rev steps_rev) else None)
          expansions
      in
      if completions <> [] then completions
      else begin
        let next_frontier =
          List.filter (fun (n, _) -> not (Ids.equal_node n e)) expansions
        in
        List.iter
          (fun (n, _) -> visited := Ids.Node_set.add n !visited)
          next_frontier;
        level (depth + 1) next_frontier
      end
    end
  in
  level 0 [ (s, []) ]

(* Bidirectional BFS for a single shortest path between two distinct
   endpoints.  At each step the frontier with the smaller total degree
   expands — the statistics-driven direction choice that makes the
   bound-endpoints case fast on large graphs.  Minimal walks between
   distinct endpoints under kmin <= 1 are node-simple (a repeated node
   could be cut, contradicting minimality), so per-side first-discovery
   marking is sound and the two halves of a minimal concatenation never
   share a node.  A meet is recorded when the second side reaches a
   node; once any meet exists, the minimum recorded total is the true
   shortest length (a shorter path would have produced an earlier
   meet). *)
let bidir_shortest g neighbours_fwd neighbours_bwd s e ~kmax =
  let key = Ids.node_to_int in
  let fwd_dist = Hashtbl.create 64 and bwd_dist = Hashtbl.create 64 in
  let fwd_parent = Hashtbl.create 64 and bwd_parent = Hashtbl.create 64 in
  Hashtbl.replace fwd_dist (key s) 0;
  Hashtbl.replace bwd_dist (key e) 0;
  let fwd_frontier = ref [ s ] and bwd_frontier = ref [ e ] in
  let df = ref 0 and db = ref 0 in
  let best = ref None in
  let expand_side ~fwd =
    let frontier, dist, parent, other_dist, depth, neighbours =
      if fwd then (fwd_frontier, fwd_dist, fwd_parent, bwd_dist, df, neighbours_fwd)
      else (bwd_frontier, bwd_dist, bwd_parent, fwd_dist, db, neighbours_bwd)
    in
    let d' = !depth + 1 in
    let next = ref [] in
    List.iter
      (fun cur ->
        List.iter
          (fun (r, n) ->
            let k = key n in
            if not (Hashtbl.mem dist k) then begin
              Hashtbl.replace dist k d';
              Hashtbl.replace parent k (r, cur);
              next := n :: !next;
              match Hashtbl.find_opt other_dist k with
              | Some od -> (
                let total = d' + od in
                match !best with
                | Some (b, _) when b <= total -> ()
                | _ -> best := Some (total, n))
              | None -> ()
            end)
          (neighbours cur))
      !frontier;
    frontier := List.rev !next;
    depth := d'
  in
  let frontier_degree fr =
    List.fold_left (fun acc n -> acc + Graph.degree g n) 0 fr
  in
  let rec search () =
    match !best with
    | Some (total, meet) ->
      if total > kmax then []
      else begin
        let rec build_fwd n acc =
          if Ids.equal_node n s then acc
          else
            let r, prev = Hashtbl.find fwd_parent (key n) in
            build_fwd prev ((r, n) :: acc)
        in
        let rec build_bwd cur acc_rev =
          if Ids.equal_node cur e then List.rev acc_rev
          else
            let r, nxt = Hashtbl.find bwd_parent (key cur) in
            build_bwd nxt ((r, nxt) :: acc_rev)
        in
        [ build_fwd meet [] @ build_bwd meet [] ]
      end
    | None ->
      if !fwd_frontier = [] || !bwd_frontier = [] || !df + !db >= kmax then []
      else begin
        if frontier_degree !fwd_frontier <= frontier_degree !bwd_frontier then
          expand_side ~fwd:true
        else expand_side ~fwd:false;
        search ()
      end
  in
  search ()

(* Cheapest path by Dijkstra over a numeric cost property — a verbatim
   mirror of the reference engine's search, including the Set-based
   priority queue and its settle-order tie-breaking, so both engines
   return the same path. *)
let dijkstra_cheapest g neighbours s e ~cost_prop =
  if Ids.equal_node s e then
    eval_error "cheapestPath between identical endpoints is not supported";
  let cost_of r =
    match Graph.rel_prop g r cost_prop with
    | Value.Int i -> float_of_int i
    | Value.Float f -> f
    | Value.Null ->
      eval_error "cheapestPath: relationship has no '%s' cost property"
        cost_prop
    | v ->
      Value.type_error
        "cheapestPath: cost property '%s' is %s, expected a number" cost_prop
        (Value.type_name v)
  in
  let module Pq = Set.Make (struct
    type t = float * int * Ids.node

    let compare (c1, i1, _) (c2, i2, _) =
      match Float.compare c1 c2 with 0 -> Int.compare i1 i2 | c -> c
  end) in
  let dist = Hashtbl.create 64 in
  let parent = Hashtbl.create 64 in
  let settled = Hashtbl.create 64 in
  let counter = ref 0 in
  let pq = ref Pq.empty in
  let push c n =
    incr counter;
    pq := Pq.add (c, !counter, n) !pq
  in
  Hashtbl.replace dist (Ids.node_to_int s) 0.0;
  push 0.0 s;
  let reached = ref false in
  while (not !reached) && not (Pq.is_empty !pq) do
    let (c, _, n) as elt = Pq.min_elt !pq in
    pq := Pq.remove elt !pq;
    let key = Ids.node_to_int n in
    if not (Hashtbl.mem settled key) then begin
      Hashtbl.replace settled key ();
      if Ids.equal_node n e then reached := true
      else
        List.iter
          (fun (r, next) ->
            let w = cost_of r in
            if w < 0.0 then
              eval_error "cheapestPath: negative '%s' cost on a relationship"
                cost_prop;
            let nk = Ids.node_to_int next in
            if not (Hashtbl.mem settled nk) then begin
              let nc = c +. w in
              let better =
                match Hashtbl.find_opt dist nk with
                | Some old -> nc < old
                | None -> true
              in
              if better then begin
                Hashtbl.replace dist nk nc;
                Hashtbl.replace parent nk (r, n);
                push nc next
              end
            end)
          (neighbours n)
    end
  done;
  if not !reached then []
  else begin
    let rec rebuild n acc =
      if Ids.equal_node n s then acc
      else
        let r, prev = Hashtbl.find parent (Ids.node_to_int n) in
        rebuild prev ((r, n) :: acc)
    in
    [ rebuild e [] ]
  end

(* Observation hook for PROFILE.  When the profiler is set, every
   operator's output sequence is wrapped so that each pull is measured:
   rows produced, db hits (via the {!Graph} access counter) and
   wall-clock time.  A pull of an operator forces pulls of its inputs
   inside it, so the recorded hits and time are *inclusive* — per-node
   self costs are recovered by {!self_profile}.  The hook is dynamically
   scoped around a fully materialised profiled run, so laziness cannot
   leak measurements outside it. *)

type profile = { prof_rows : int; prof_hits : int; prof_ns : int }

type prof_entry = {
  mutable e_rows : int;
  mutable e_hits : int;
  mutable e_ns : int;
}

(* Dynamically scoped per *domain*, not a plain global: a profiled run
   on one server thread must not instrument — or race against — a
   parallel query whose morsels execute on worker domains at the same
   time.  Workers start from the key's initializer, so they always see
   [None]; profiled runs themselves stay entirely on one domain. *)
let profiler_key : (Plan.t -> prof_entry) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let rec instrument entry (seq : 'a Seq.t) : 'a Seq.t =
 fun () ->
  let h0 = Graph.db_hits () in
  let t0 = Cypher_obs.Clock.now_ns () in
  let step = seq () in
  (* monotonic difference: non-negative even if NTP steps the wall clock *)
  entry.e_ns <- entry.e_ns + (Cypher_obs.Clock.now_ns () - t0);
  entry.e_hits <- entry.e_hits + (Graph.db_hits () - h0);
  match step with
  | Seq.Nil -> Seq.Nil
  | Seq.Cons (x, rest) ->
    entry.e_rows <- entry.e_rows + 1;
    Seq.Cons (x, instrument entry rest)

let rec rows cfg g plan arg =
  match Domain.DLS.get profiler_key with
  | None -> rows_body cfg g plan arg
  | Some find -> instrument (find plan) (rows_body cfg g plan arg)

and rows_body cfg g plan arg =
  match plan with
  | Plan.Argument -> arg
  | Plan.All_nodes_scan { var; input } ->
    (* the node list does not depend on the row: assemble it once per
       execution, not once per input row *)
    let all_nodes = lazy (Graph.nodes g) in
    seq_filter_map_concat
      (fun row ->
        match Record.find row var with
        | Some (Value.Node n) when Graph.mem_node g n -> Seq.return row
        | Some _ -> Seq.empty
        | None ->
          Seq.map
            (fun n -> Record.add row var (Value.Node n))
            (List.to_seq (Lazy.force all_nodes)))
      (rows cfg g input arg)
  | Plan.Rel_type_scan { rel; types; from_; to_; dir; input } ->
    (* likewise, orient the relationship set once per execution *)
    let oriented =
      lazy
        (let rels = List.concat_map (Graph.rels_with_type g) types in
         match dir with
         | Plan.Out ->
           List.map (fun r -> (r, Graph.src g r, Graph.tgt g r)) rels
         | Plan.In ->
           List.map (fun r -> (r, Graph.tgt g r, Graph.src g r)) rels
         | Plan.Both ->
           List.concat_map
             (fun r ->
               let s = Graph.src g r and t = Graph.tgt g r in
               if Ids.equal_node s t then [ (r, s, t) ]
               else [ (r, s, t); (r, t, s) ])
             rels)
    in
    seq_filter_map_concat
      (fun row ->
        Seq.filter_map
          (fun (r, a, b) ->
            Option.bind (bind_or_check row rel (Value.Rel r)) (fun row ->
                Option.bind (bind_or_check row from_ (Value.Node a)) (fun row ->
                    bind_or_check row to_ (Value.Node b))))
          (List.to_seq (Lazy.force oriented)))
      (rows cfg g input arg)
  | Plan.Node_index_seek { var; label; key; value; input } ->
    seq_filter_map_concat
      (fun row ->
        let v = Eval.eval_expr cfg g row value in
        if Value.is_null v then Seq.empty
        else
          let hits =
            try Graph.index_seek g ~label ~key v
            with Not_found ->
              (* index dropped between planning and execution: recover by
                 scanning the label *)
              List.filter
                (fun n -> Value.equal_total (Graph.node_prop g n key) v)
                (Graph.nodes_with_label g label)
          in
          match Record.find row var with
          | Some (Value.Node n0) ->
            if List.exists (Ids.equal_node n0) hits then Seq.return row
            else Seq.empty
          | Some _ -> Seq.empty
          | None ->
            Seq.map
              (fun n -> Record.add row var (Value.Node n))
              (List.to_seq hits))
      (rows cfg g input arg)
  | Plan.Node_by_label_scan { var; label; input } ->
    let labelled = lazy (Graph.nodes_with_label g label) in
    seq_filter_map_concat
      (fun row ->
        match Record.find row var with
        | Some (Value.Node n) when Graph.has_label g n label -> Seq.return row
        | Some _ -> Seq.empty
        | None ->
          Seq.map
            (fun n -> Record.add row var (Value.Node n))
            (List.to_seq (Lazy.force labelled)))
      (rows cfg g input arg)
  | Plan.Expand { from_; rel; types; dir; to_; scan_rels; input } ->
    seq_filter_map_concat
      (fun row ->
        match node_of row from_ with
        | None -> Seq.empty
        | Some n ->
          let candidates = expand_candidates g ~scan_rels ~dir n in
          Seq.filter_map
            (fun (r, other) ->
              if types <> [] && not (List.mem (Graph.rel_type g r) types) then
                None
              else
                Option.bind (bind_or_check row rel (Value.Rel r)) (fun row ->
                    bind_or_check row to_ (Value.Node other)))
            (List.to_seq candidates))
      (rows cfg g input arg)
  | Plan.Var_expand { from_; rel; types; dir; min_len; max_len; to_; input } ->
    let cap =
      match max_len with Some n -> n | None -> Graph.rel_count g
    in
    seq_filter_map_concat
      (fun row ->
        match node_of row from_ with
        | None -> Seq.empty
        | Some n0 ->
          let results = ref [] in
          let rec seg used cur depth rels_rev =
            if depth >= min_len then begin
              let rel_list =
                Value.List (List.rev_map (fun r -> Value.Rel r) rels_rev)
              in
              match
                Option.bind (bind_or_check row rel rel_list) (fun row ->
                    bind_or_check row to_ (Value.Node cur))
              with
              | Some row' -> results := row' :: !results
              | None -> ()
            end;
            if depth < cap then
              List.iter
                (fun (r, other) ->
                  if
                    (not (Ids.Rel_set.mem r used))
                    && (types = [] || List.mem (Graph.rel_type g r) types)
                  then
                    seg (Ids.Rel_set.add r used) other (depth + 1) (r :: rels_rev))
                (expand_candidates g ~scan_rels:false ~dir cur)
          in
          seg Ids.Rel_set.empty n0 0 [];
          List.to_seq (List.rev !results))
      (rows cfg g input arg)
  | Plan.Filter { pred; input } ->
    Seq.filter
      (fun row -> Ternary.is_true (Eval.eval_truth cfg g row pred))
      (rows cfg g input arg)
  | Plan.Project { items; input } ->
    Seq.map
      (fun row ->
        Record.of_list
          (List.map (fun (name, e) -> (name, Eval.eval_expr cfg g row e)) items))
      (rows cfg g input arg)
  | Plan.Aggregate { keys; aggs; input } ->
    delayed
      (fun () ->
        let materialized = List.of_seq (rows cfg g input arg) in
        let groups =
          if keys = [] then [ ([], materialized) ]
          else
            group_rows materialized ~key:(fun row ->
                List.map (fun (_, e) -> Eval.eval_expr cfg g row e) keys)
        in
        List.to_seq
          (List.map
             (fun (key_vals, group_rows) ->
               let base =
                 if keys = [] then Record.empty
                 else
                   Record.of_list
                     (List.map2 (fun (name, _) v -> (name, v)) keys key_vals)
               in
               List.fold_left
                 (fun acc (name, spec) ->
                   Record.add acc name (Agg.compute cfg g group_rows spec))
                 base aggs)
             groups))
  | Plan.Distinct { input } ->
    let seen = Hashtbl.create 64 in
    Seq.filter
      (fun row ->
        let h = Record.hash row in
        let bucket = try Hashtbl.find seen h with Not_found -> [] in
        if List.exists (Record.equal row) bucket then false
        else (
          Hashtbl.replace seen h (row :: bucket);
          true))
      (rows cfg g input arg)
  | Plan.Sort { by; input } ->
    delayed
      (fun () ->
        let materialized = List.of_seq (rows cfg g input arg) in
        let compare_rows r1 r2 =
          let rec go = function
            | [] -> 0
            | (e, d) :: rest ->
              let c =
                Value.compare_total (Eval.eval_expr cfg g r1 e)
                  (Eval.eval_expr cfg g r2 e)
              in
              let c = match d with Plan.Asc -> c | Plan.Desc -> -c in
              if c <> 0 then c else go rest
          in
          go by
        in
        List.to_seq (List.stable_sort compare_rows materialized))
  | Plan.Skip_rows { count; input } ->
    let n = eval_count cfg g "SKIP" count in
    Seq.drop n (rows cfg g input arg)
  | Plan.Limit_rows { count; input } ->
    let n = eval_count cfg g "LIMIT" count in
    Seq.take n (rows cfg g input arg)
  | Plan.Unwind { expr; var; input } ->
    seq_filter_map_concat
      (fun row ->
        match Eval.eval_expr cfg g row expr with
        | Value.List vs ->
          Seq.map (fun v -> Record.add row var v) (List.to_seq vs)
        | Value.Null -> Seq.empty
        | v -> Seq.return (Record.add row var v))
      (rows cfg g input arg)
  | Plan.Optional { inner; introduced; input } ->
    seq_filter_map_concat
      (fun row ->
        (* Only the bindings of the introduced variables are taken from
           the inner rows; inner-internal variables must not leak, so
           that the output rows stay uniform with the null-padded ones. *)
        let produced =
          Seq.map
            (fun inner_row ->
              Record.overlay row (Record.project inner_row introduced))
            (rows cfg g inner (Seq.return row))
        in
        match produced () with
        | Seq.Nil ->
          let missing =
            List.filter (fun a -> not (Record.mem row a)) introduced
          in
          Seq.return (Record.with_nulls row missing)
        | Seq.Cons (first, rest) -> Seq.cons first rest)
      (rows cfg g input arg)
  | Plan.Rel_uniqueness { vars; input } ->
    Seq.filter
      (fun row ->
        let ids = List.concat_map (rel_ids_of_binding row) vars in
        let set = Ids.Rel_set.of_list ids in
        Ids.Rel_set.cardinal set = List.length ids)
      (rows cfg g input arg)
  | Plan.Regex_expand { from_; rel; regex; dir; to_; input } ->
    let nfa = Type_regex.compile regex in
    let cap = var_cap cfg g in
    seq_filter_map_concat
      (fun row ->
        match node_of row from_ with
        | None -> Seq.empty
        | Some n0 ->
          (* subset-simulate the type NFA along relationship-unique
             walks; the walk may end whenever the state set accepts —
             the mirror of the reference engine's RPQ hop *)
          let results = ref [] in
          let rec rseg used cur states depth rels_rev =
            if Type_regex.accepting nfa states then begin
              let v = Value.List (List.rev_map (fun r -> Value.Rel r) rels_rev) in
              match
                Option.bind (bind_or_check row rel v) (fun row ->
                    bind_or_check row to_ (Value.Node cur))
              with
              | Some row' -> results := row' :: !results
              | None -> ()
            end;
            if depth < cap then
              List.iter
                (fun (r, next) ->
                  if not (Ids.Rel_set.mem r used) then begin
                    let states' =
                      Type_regex.step nfa states (Graph.rel_type g r)
                    in
                    if not (Type_regex.is_empty states') then
                      rseg (Ids.Rel_set.add r used) next states' (depth + 1)
                        (r :: rels_rev)
                  end)
                (expand_candidates g ~scan_rels:false ~dir cur)
          in
          rseg Ids.Rel_set.empty n0 (Type_regex.start nfa) 0 [];
          List.to_seq (List.rev !results))
      (rows cfg g input arg)
  | Plan.Shortest_path
      { from_; to_; rel; rel_single; types; dir; props; min_len; max_len; all;
        restr; path; input } ->
    seq_filter_map_concat
      (fun row ->
        match node_of row from_, node_of row to_ with
        | Some s, Some e ->
          let neighbours cur =
            search_neighbours cfg g row ~types ~props ~dir cur
          in
          let kmax =
            match max_len with Some n -> n | None -> var_cap cfg g
          in
          let candidates ~all =
            if Ids.equal_node s e then
              if min_len = 0 then [ [] ]
              else deepening_steps neighbours s e ~kmin:min_len ~kmax ~all
            else if min_len > 1 then
              deepening_steps neighbours s e ~kmin:min_len ~kmax ~all
            else if all then bfs_all_shortest neighbours s e ~kmax
            else
              bidir_shortest g neighbours
                (fun cur ->
                  search_neighbours cfg g row ~types ~props
                    ~dir:(flip_plan_dir dir) cur)
                s e ~kmax
          in
          let try_candidate steps =
            if not (restr_ok restr s steps) then None
            else
              let rel_value =
                if rel_single then
                  match steps with
                  | [ (r, _) ] -> Some (Value.Rel r)
                  | _ -> None
                else
                  Some (Value.List (List.map (fun (r, _) -> Value.Rel r) steps))
              in
              match rel_value with
              | None -> None
              | Some v ->
                Option.bind (bind_or_check row rel v) (fun row ->
                    match path with
                    | None -> Some row
                    | Some p ->
                      bind_or_check row p
                        (Value.Path { path_start = s; path_steps = steps }))
          in
          if all then
            List.to_seq (List.filter_map try_candidate (candidates ~all:true))
          else begin
            match candidates ~all:false with
            | [] -> Seq.empty
            | first :: _ -> (
              match try_candidate first with
              | Some row' -> Seq.return row'
              | None ->
                (* the arbitrary survivor was rejected (a restrictor on a
                   cyclic or kmin > 1 search): retry every minimal-length
                   alternative, as the reference engine does *)
                let same a b =
                  List.length a = List.length b
                  && List.for_all2
                       (fun (r1, _) (r2, _) -> Ids.equal_rel r1 r2)
                       a b
                in
                let rec loop = function
                  | [] -> Seq.empty
                  | c :: rest ->
                    if same c first then loop rest
                    else (
                      match try_candidate c with
                      | Some row' -> Seq.return row'
                      | None -> loop rest)
                in
                loop (candidates ~all:true))
          end
        | _ -> Seq.empty)
      (rows cfg g input arg)
  | Plan.Cheapest_path
      { from_; to_; rel; types; dir; props; cost_prop; restr; path; input } ->
    seq_filter_map_concat
      (fun row ->
        match node_of row from_, node_of row to_ with
        | Some s, Some e ->
          let neighbours cur =
            search_neighbours cfg g row ~types ~props ~dir cur
          in
          let try_candidate steps =
            if not (restr_ok restr s steps) then None
            else
              let v = Value.List (List.map (fun (r, _) -> Value.Rel r) steps) in
              Option.bind (bind_or_check row rel v) (fun row ->
                  match path with
                  | None -> Some row
                  | Some p ->
                    bind_or_check row p
                      (Value.Path { path_start = s; path_steps = steps }))
          in
          List.to_seq
            (List.filter_map try_candidate
               (dijkstra_cheapest g neighbours s e ~cost_prop))
        | _ -> Seq.empty)
      (rows cfg g input arg)
  | Plan.Path_restrict { restr; start_var; hops; input } ->
    Seq.filter
      (fun row ->
        match node_of row start_var with
        | None -> false
        | Some start ->
          let steps =
            List.concat_map (rel_ids_of_binding row) hops
            |> List.fold_left
                 (fun (cur, acc) r ->
                   let next = Graph.other_end g r cur in
                   (next, (r, next) :: acc))
                 (start, [])
            |> snd |> List.rev
          in
          restr_ok restr start steps)
      (rows cfg g input arg)
  | Plan.Project_path { var; start_var; hops; input } ->
    Seq.filter_map
      (fun row ->
        match node_of row start_var with
        | None -> None
        | Some start ->
          let steps =
            List.concat_map (rel_ids_of_binding row) hops
            |> List.fold_left
                 (fun (cur, acc) r ->
                   let next = Graph.other_end g r cur in
                   (next, (r, next) :: acc))
                 (start, [])
            |> snd |> List.rev
          in
          bind_or_check row var
            (Value.Path { path_start = start; path_steps = steps }))
      (rows cfg g input arg)

and eval_count cfg g what e =
  match Eval.eval_expr cfg g Record.empty e with
  | Value.Int n when n >= 0 -> n
  | Value.Int n ->
    eval_error "%s: expected a non-negative integer, got %d" what n
  | v -> eval_error "%s: expected an integer, got %s" what (Value.type_name v)

let run cfg g ~fields plan table =
  Table.of_seq ~fields (rows cfg g plan (Table.to_seq table))

let run_profiled cfg g ~fields plan table =
  let entries : (Plan.t * prof_entry) list ref = ref [] in
  let find node =
    match List.find_opt (fun (p, _) -> p == node) !entries with
    | Some (_, e) -> e
    | None ->
      let e = { e_rows = 0; e_hits = 0; e_ns = 0 } in
      entries := (node, e) :: !entries;
      e
  in
  let was_counting = Graph.db_hit_counting_on () in
  Graph.count_db_hits true;
  Domain.DLS.set profiler_key (Some find);
  let result =
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set profiler_key None;
        Graph.count_db_hits was_counting)
      (fun () -> Table.of_seq ~fields (rows cfg g plan (Table.to_seq table)))
  in
  let stats node =
    match List.find_opt (fun (p, _) -> p == node) !entries with
    | Some (_, e) -> { prof_rows = e.e_rows; prof_hits = e.e_hits; prof_ns = e.e_ns }
    | None -> { prof_rows = 0; prof_hits = 0; prof_ns = 0 }
  in
  (result, stats)

(* The direct inputs whose inclusive measurements are nested inside a
   node's own: the pipeline input plus, for OptionalApply, the applied
   inner plan. *)
let prof_children node =
  (match node with Plan.Optional { inner; _ } -> [ inner ] | _ -> [])
  @ (match Plan.input_of node with Some i -> [ i ] | None -> [])

let self_profile stats node =
  let incl = stats node in
  let minus f =
    max 0
      (f incl
      - List.fold_left (fun acc k -> acc + f (stats k)) 0 (prof_children node))
  in
  {
    prof_rows = incl.prof_rows;
    prof_hits = minus (fun p -> p.prof_hits);
    prof_ns = minus (fun p -> p.prof_ns);
  }
