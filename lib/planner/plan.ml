type dir = Out | In | Both

type hop_binding = Single_rel of string | Rel_list of string

type sort_dir = Asc | Desc

type t =
  | Argument
  | All_nodes_scan of { var : string; input : t }
  | Node_by_label_scan of { var : string; label : string; input : t }
  | Node_index_seek of {
      var : string;
      label : string;
      key : string;
      value : Cypher_ast.Ast.expr;
      input : t;
    }
  | Rel_type_scan of {
      rel : string;
      types : string list; (* non-empty *)
      from_ : string;
      to_ : string;
      dir : dir; (* Both: each relationship yields both orientations *)
      input : t;
    }
  | Expand of {
      from_ : string;
      rel : string;
      types : string list;
      dir : dir;
      to_ : string;
      scan_rels : bool;
      input : t;
    }
  | Var_expand of {
      from_ : string;
      rel : string;
      types : string list;
      dir : dir;
      min_len : int;
      max_len : int option;
      to_ : string;
      input : t;
    }
  | Filter of { pred : Cypher_ast.Ast.expr; input : t }
  | Project of { items : (string * Cypher_ast.Ast.expr) list; input : t }
  | Aggregate of {
      keys : (string * Cypher_ast.Ast.expr) list;
      aggs : (string * Cypher_semantics.Agg.spec) list;
      input : t;
    }
  | Distinct of { input : t }
  | Sort of { by : (Cypher_ast.Ast.expr * sort_dir) list; input : t }
  | Skip_rows of { count : Cypher_ast.Ast.expr; input : t }
  | Limit_rows of { count : Cypher_ast.Ast.expr; input : t }
  | Unwind of { expr : Cypher_ast.Ast.expr; var : string; input : t }
  | Optional of { inner : t; introduced : string list; input : t }
  | Rel_uniqueness of { vars : hop_binding list; input : t }
  | Project_path of {
      var : string;
      start_var : string;
      hops : hop_binding list;
      input : t;
    }
  | Regex_expand of {
      from_ : string;
      rel : string; (* binds the list of traversed relationships *)
      regex : Cypher_ast.Ast.type_regex;
      dir : dir;
      to_ : string;
      input : t;
    }
  | Shortest_path of {
      from_ : string; (* both endpoint variables are bound by the input *)
      to_ : string;
      rel : string;
      rel_single : bool; (* a single-hop pattern binds Rel, not a list *)
      types : string list;
      dir : dir;
      props : (string * Cypher_ast.Ast.expr) list;
      min_len : int;
      max_len : int option;
      all : bool; (* allShortestPaths *)
      restr : Cypher_ast.Ast.path_restrictor;
      path : string option;
      input : t;
    }
  | Cheapest_path of {
      from_ : string;
      to_ : string;
      rel : string;
      types : string list;
      dir : dir;
      props : (string * Cypher_ast.Ast.expr) list;
      cost_prop : string;
      restr : Cypher_ast.Ast.path_restrictor;
      path : string option;
      input : t;
    }
  | Path_restrict of {
      restr : Cypher_ast.Ast.path_restrictor;
      start_var : string;
      hops : hop_binding list;
      input : t;
    }

let input_of = function
  | Argument -> None
  | All_nodes_scan { input; _ }
  | Node_by_label_scan { input; _ }
  | Node_index_seek { input; _ }
  | Rel_type_scan { input; _ }
  | Expand { input; _ }
  | Var_expand { input; _ }
  | Filter { input; _ }
  | Project { input; _ }
  | Aggregate { input; _ }
  | Distinct { input }
  | Sort { input; _ }
  | Skip_rows { input; _ }
  | Limit_rows { input; _ }
  | Unwind { input; _ }
  | Optional { input; _ }
  | Rel_uniqueness { input; _ }
  | Project_path { input; _ }
  | Regex_expand { input; _ }
  | Shortest_path { input; _ }
  | Cheapest_path { input; _ }
  | Path_restrict { input; _ } ->
    Some input

(* Rebuilds the operator over a different input — the parallel executor
   uses this to re-root pipeline segments on [Argument] so they can be
   driven per morsel.  [Argument] has no input and is returned as is. *)
let with_input op input =
  match op with
  | Argument -> Argument
  | All_nodes_scan r -> All_nodes_scan { r with input }
  | Node_by_label_scan r -> Node_by_label_scan { r with input }
  | Node_index_seek r -> Node_index_seek { r with input }
  | Rel_type_scan r -> Rel_type_scan { r with input }
  | Expand r -> Expand { r with input }
  | Var_expand r -> Var_expand { r with input }
  | Filter r -> Filter { r with input }
  | Project r -> Project { r with input }
  | Aggregate r -> Aggregate { r with input }
  | Distinct _ -> Distinct { input }
  | Sort r -> Sort { r with input }
  | Skip_rows r -> Skip_rows { r with input }
  | Limit_rows r -> Limit_rows { r with input }
  | Unwind r -> Unwind { r with input }
  | Optional r -> Optional { r with input }
  | Rel_uniqueness r -> Rel_uniqueness { r with input }
  | Project_path r -> Project_path { r with input }
  | Regex_expand r -> Regex_expand { r with input }
  | Shortest_path r -> Shortest_path { r with input }
  | Cheapest_path r -> Cheapest_path { r with input }
  | Path_restrict r -> Path_restrict { r with input }

let dir_arrow = function Out -> "-->" | In -> "<--" | Both -> "--"

let hop_name = function Single_rel r -> r | Rel_list r -> r ^ "*"

let types_str = function
  | [] -> ""
  | ts -> ":" ^ String.concat "|" ts

let restr_str = function
  | Cypher_ast.Ast.Walk -> ""
  | Cypher_ast.Ast.Trail -> "[trail]"
  | Cypher_ast.Ast.Acyclic -> "[acyclic]"

(* One line describing the operator itself (without its input). *)
let describe = function
  | Argument -> "Argument"
  | All_nodes_scan { var; _ } -> Printf.sprintf "AllNodesScan (%s)" var
  | Node_by_label_scan { var; label; _ } ->
    Printf.sprintf "NodeByLabelScan (%s:%s)" var label
  | Node_index_seek { var; label; key; value; _ } ->
    Printf.sprintf "NodeIndexSeek (%s:%s {%s: %s})" var label key
      (Cypher_ast.Pretty.expr_to_string value)
  | Rel_type_scan { rel; types; from_; to_; dir; _ } ->
    Printf.sprintf "RelationshipTypeScan (%s)-[%s%s]%s(%s)" from_ rel
      (types_str types) (dir_arrow dir) to_
  | Expand { from_; rel; types; dir; to_; scan_rels; _ } ->
    Printf.sprintf "Expand%s (%s)-[%s%s]%s(%s)"
      (if scan_rels then "[scan]" else "")
      from_ rel (types_str types) (dir_arrow dir) to_
  | Var_expand { from_; rel; types; dir; min_len; max_len; to_; _ } ->
    Printf.sprintf "VarLengthExpand (%s)-[%s%s*%d..%s]%s(%s)" from_ rel
      (types_str types) min_len
      (match max_len with Some n -> string_of_int n | None -> "")
      (dir_arrow dir) to_
  | Filter { pred; _ } ->
    Printf.sprintf "Filter (%s)" (Cypher_ast.Pretty.expr_to_string pred)
  | Project { items; _ } ->
    Printf.sprintf "Projection (%s)"
      (String.concat ", "
         (List.map
            (fun (name, e) ->
              Printf.sprintf "%s AS %s" (Cypher_ast.Pretty.expr_to_string e) name)
            items))
  | Aggregate { keys; aggs; _ } ->
    Printf.sprintf "EagerAggregation (keys: %s; aggregates: %s)"
      (String.concat ", " (List.map fst keys))
      (String.concat ", " (List.map fst aggs))
  | Distinct _ -> "Distinct"
  | Sort { by; _ } ->
    Printf.sprintf "Sort (%s)"
      (String.concat ", "
         (List.map
            (fun (e, d) ->
              Cypher_ast.Pretty.expr_to_string e
              ^ match d with Asc -> "" | Desc -> " DESC")
            by))
  | Skip_rows { count; _ } ->
    Printf.sprintf "Skip (%s)" (Cypher_ast.Pretty.expr_to_string count)
  | Limit_rows { count; _ } ->
    Printf.sprintf "Limit (%s)" (Cypher_ast.Pretty.expr_to_string count)
  | Unwind { expr; var; _ } ->
    Printf.sprintf "Unwind (%s AS %s)"
      (Cypher_ast.Pretty.expr_to_string expr)
      var
  | Optional { introduced; _ } ->
    Printf.sprintf "OptionalApply (introduces: %s)"
      (String.concat ", " introduced)
  | Rel_uniqueness { vars; _ } ->
    Printf.sprintf "RelationshipUniqueness (%s)"
      (String.concat ", " (List.map hop_name vars))
  | Project_path { var; start_var; hops; _ } ->
    Printf.sprintf "ProjectPath (%s = (%s)%s)" var start_var
      (String.concat "" (List.map (fun h -> "-" ^ hop_name h ^ "-") hops))
  | Regex_expand { from_; rel; regex; dir; to_; _ } ->
    Printf.sprintf "RegexExpand (%s)-[%s:(%s)]%s(%s)" from_ rel
      (Cypher_ast.Ast.regex_to_string regex)
      (dir_arrow dir) to_
  | Shortest_path { from_; to_; rel; types; dir; min_len; max_len; all; restr; _ }
    ->
    Printf.sprintf "%s%s (%s)-[%s%s*%d..%s]%s(%s)"
      (if all then "AllShortestPaths" else "ShortestPath")
      (restr_str restr) from_ rel (types_str types) min_len
      (match max_len with Some n -> string_of_int n | None -> "")
      (dir_arrow dir) to_
  | Cheapest_path { from_; to_; rel; types; dir; cost_prop; restr; _ } ->
    Printf.sprintf "CheapestPath%s (%s)-[%s%s*]%s(%s) (cost: %s)"
      (restr_str restr) from_ rel (types_str types) (dir_arrow dir) to_
      cost_prop
  | Path_restrict { restr; start_var; hops; _ } ->
    Printf.sprintf "PathRestrict%s ((%s)%s)" (restr_str restr) start_var
      (String.concat "" (List.map (fun h -> "-" ^ hop_name h ^ "-") hops))

let rec pp_gen ~annotate depth ppf plan =
  let pad = String.make (depth * 2) ' ' in
  Format.fprintf ppf "%s+ %s%s@." pad (describe plan) (annotate plan);
  (match plan with
  | Optional { inner; _ } ->
    Format.fprintf ppf "%s  [inner]@." pad;
    pp_gen ~annotate (depth + 2) ppf inner
  | _ -> ());
  match input_of plan with
  | Some input -> pp_gen ~annotate (depth + 1) ppf input
  | None -> ()

let pp ppf plan = pp_gen ~annotate:(fun _ -> "") 0 ppf plan
let pp_annotated ~annotate ppf plan = pp_gen ~annotate 0 ppf plan
let to_string plan = Format.asprintf "%a" pp plan
