(** Physical query plans.

    The operator vocabulary follows the description of Neo4j's executor
    in Section 2 of the paper: "an execution plan for a Cypher query in
    Neo4j contains largely the same operators as in relational database
    engines and an additional operator called Expand", which walks the
    direct node-to-relationship references of the store.  Plans here are
    executed tuple-at-a-time with a Volcano-style iterator model
    ({!Exec}).

    All operators are Apply-shaped: they consume the rows of their input
    operator, so a leaf scan enumerates nodes {e per input row}; the plan
    for a whole query starts from [Argument], the driving table. *)

type dir = Out | In | Both

type hop_binding =
  | Single_rel of string  (** a rigid hop bound to a relationship variable *)
  | Rel_list of string  (** a variable-length hop bound to a list variable *)

type sort_dir = Asc | Desc

type t =
  | Argument
  | All_nodes_scan of { var : string; input : t }
  | Node_by_label_scan of { var : string; label : string; input : t }
  | Node_index_seek of {
      var : string;
      label : string;
      key : string;
      value : Cypher_ast.Ast.expr;
          (** evaluated per driving row; must not reference variables
              bound by the same pattern *)
      input : t;
    }
  | Rel_type_scan of {
      rel : string;
      types : string list;  (** non-empty *)
      from_ : string;
      to_ : string;
      dir : dir;
          (** [Both]: each relationship is emitted in both orientations *)
      input : t;
    }
      (** leaf scan over the relationship-type index, binding the
          relationship and both endpoints — cheaper than a node scan plus
          Expand when the type is rare *)
  | Expand of {
      from_ : string;
      rel : string;
      types : string list;
      dir : dir;
      to_ : string;
      scan_rels : bool;
          (** baseline mode: find neighbours by scanning the whole
              relationship set instead of the adjacency lists — used to
              measure what Expand's locality buys (experiment B1) *)
      input : t;
    }
  | Var_expand of {
      from_ : string;
      rel : string;
      types : string list;
      dir : dir;
      min_len : int;
      max_len : int option;
      to_ : string;
      input : t;
    }
  | Filter of { pred : Cypher_ast.Ast.expr; input : t }
  | Project of { items : (string * Cypher_ast.Ast.expr) list; input : t }
  | Aggregate of {
      keys : (string * Cypher_ast.Ast.expr) list;
      aggs : (string * Cypher_semantics.Agg.spec) list;
      input : t;
    }
  | Distinct of { input : t }
  | Sort of { by : (Cypher_ast.Ast.expr * sort_dir) list; input : t }
  | Skip_rows of { count : Cypher_ast.Ast.expr; input : t }
  | Limit_rows of { count : Cypher_ast.Ast.expr; input : t }
  | Unwind of { expr : Cypher_ast.Ast.expr; var : string; input : t }
  | Optional of { inner : t; introduced : string list; input : t }
      (** for each input row, runs [inner] with the row as argument; if it
          produces nothing, pads the row with nulls on [introduced] *)
  | Rel_uniqueness of { vars : hop_binding list; input : t }
      (** enforces relationship isomorphism across the relationship
          variables of one MATCH *)
  | Project_path of {
      var : string;
      start_var : string;
      hops : hop_binding list;
      input : t;
    }
  | Regex_expand of {
      from_ : string;
      rel : string;  (** binds the list of traversed relationships *)
      regex : Cypher_ast.Ast.type_regex;
      dir : dir;
      to_ : string;
      input : t;
    }
      (** RPQ hop: subset-simulates the type regex's NFA on the product
          of automaton states and graph nodes, along relationship-unique
          walks *)
  | Shortest_path of {
      from_ : string;  (** both endpoint variables are bound by the input *)
      to_ : string;
      rel : string;
      rel_single : bool;
          (** a single-hop pattern binds a relationship, not a list *)
      types : string list;
      dir : dir;
      props : (string * Cypher_ast.Ast.expr) list;
      min_len : int;
      max_len : int option;
      all : bool;  (** allShortestPaths *)
      restr : Cypher_ast.Ast.path_restrictor;
      path : string option;
      input : t;
    }
      (** per driving row: bidirectional BFS (single path, distinct
          endpoints), level BFS (all shortest), or iterative deepening
          (cycles, [min_len > 1]) between the two bound endpoints *)
  | Cheapest_path of {
      from_ : string;
      to_ : string;
      rel : string;
      types : string list;
      dir : dir;
      props : (string * Cypher_ast.Ast.expr) list;
      cost_prop : string;
      restr : Cypher_ast.Ast.path_restrictor;
      path : string option;
      input : t;
    }  (** Dijkstra over a numeric relationship cost property *)
  | Path_restrict of {
      restr : Cypher_ast.Ast.path_restrictor;
      start_var : string;
      hops : hop_binding list;
      input : t;
    }
      (** filters rows whose reconstructed path violates a GQL TRAIL /
          ACYCLIC restrictor *)

val input_of : t -> t option

val with_input : t -> t -> t
(** [with_input op input] is [op] rebuilt over a different input
    operator ([Argument] stays [Argument]).  The parallel executor uses
    it to re-root pipeline segments on [Argument] so each morsel can
    drive them with its own row slice. *)

val describe : t -> string
(** One line describing the operator itself, without its input. *)

val pp : Format.formatter -> t -> unit
(** Indented operator tree, leaf-first, in the style of EXPLAIN output. *)

val pp_annotated :
  annotate:(t -> string) -> Format.formatter -> t -> unit
(** Like {!pp}, appending [annotate node] to each operator line (used by
    {!Cost.explain_with_estimates} to attach row estimates). *)

val to_string : t -> string
