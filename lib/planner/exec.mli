(** Volcano-style tuple-at-a-time execution of physical plans.

    Rows flow through the operator tree as a lazy sequence, so LIMIT
    stops producing work upstream — the "simple tuple-at-a-time
    iterator-based execution model" of the paper's Section 2. *)

open Cypher_graph
open Cypher_table
open Cypher_semantics

val rows :
  Config.t -> Graph.t -> Plan.t -> Record.t Seq.t -> Record.t Seq.t
(** Executes the plan with the given argument rows. *)

val run :
  Config.t -> Graph.t -> fields:string list -> Plan.t -> Table.t -> Table.t
(** Runs a plan against a driving table and materialises the result with
    the given output fields. *)

type profile = { prof_rows : int; prof_hits : int; prof_ns : int }
(** One operator's PROFILE measurements: rows produced, db hits (store
    accesses, see {!Graph.db_hits}) and monotonic-clock nanoseconds.  As
    returned by {!run_profiled} the hits and time are {e inclusive} of
    the operator's inputs — a pull forces the inputs' pulls inside it;
    {!self_profile} recovers per-operator self costs. *)

val run_profiled :
  Config.t -> Graph.t -> fields:string list -> Plan.t -> Table.t ->
  Table.t * (Plan.t -> profile)
(** Like {!run}, additionally measuring every operator (PROFILE): rows
    produced, db hits and elapsed time.  Db-hit counting is enabled for
    the duration of the run.  The returned function maps each operator
    of this plan (by physical identity) to its measurements. *)

val self_profile : (Plan.t -> profile) -> Plan.t -> profile
(** Converts {!run_profiled}'s inclusive measurements into the node's
    own share: hits and time minus those of its direct inputs (clamped
    at zero — per-pull clock reads make tiny negatives possible). *)
