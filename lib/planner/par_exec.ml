(* Morsel-driven parallel execution of read-only plans.

   The graph handed in is immutable — under the server it is a pinned
   MVCC snapshot — so morsels run concurrently with committing writers
   as a matter of course: parallel reads need no lock and take none.

   The sequential executor ({!Exec}) evaluates a plan as one lazy row
   stream.  This driver splits that stream across worker domains while
   producing the *same table, in the same row order*:

   - The plan chain is decomposed (bottom-up) into a morsel source, a
     streaming pipeline segment, at most one specially-handled pipeline
     breaker, and a sequential remainder.
   - The source rows — the output of the leaf scan (or the driving
     table itself, when a later query part is driven by many rows) —
     are split into contiguous morsels.  Contiguity is the load-bearing
     property: every streaming operator maps each input row to a
     sub-stream independently of its neighbours, so concatenating the
     per-morsel outputs in morsel order reproduces the sequential
     output row-for-row, not merely as a bag.
   - Each morsel runs the pipeline segment through the ordinary
     sequential executor on a worker domain (the plan, graph and config
     are immutable and shared; every per-execution cache in [Exec] is
     created inside the per-morsel call, so nothing is forced across
     domains).
   - Merges at the first pipeline breaker:
       Aggregate  — per-morsel grouping and argument-value evaluation
                    (the expensive, parallelisable part), then a
                    combine step that concatenates per-group value
                    lists in morsel order and finalises sequentially.
                    Concatenation order matters: float sums are not
                    associative, and replaying the exact sequential
                    fold order makes results bitwise-identical.
       Sort       — per-morsel stable sort, then a k-way merge that
                    breaks ties toward the lower morsel index; together
                    with per-morsel stability this equals a stable sort
                    of the whole stream.
       Limit      — the limit is pushed into each morsel (no morsel
                    produces more than n rows) and re-applied globally.
       Distinct   — per-morsel dedup (keeps first occurrences, shrinks
                    the merge) followed by the global dedup.
       anything else (Skip, or no breaker) — ordered concatenation.
   - Everything above the handled breaker runs sequentially on the
     merged stream, exactly as before.

   Error semantics match sequential first-error behaviour: each morsel
   captures its exception, and the lowest-index failure is re-raised —
   the same error the sequential executor would have hit first.

   The driver takes a {!runner} rather than touching the domain pool
   directly, so the planner layer stays independent of the engine layer
   that owns the pool. *)

open Cypher_values
open Cypher_table
open Cypher_semantics
module Clock = Cypher_obs.Clock
module Trace = Cypher_obs.Trace

type runner = {
  workers : int;  (** parallelism budget, caller included *)
  run_tasks : int -> (int -> unit) -> unit;
      (** [run_tasks n f] executes [f 0 .. f (n-1)] each exactly once,
          possibly on other domains, returning when all are done.  [f]
          must not raise. *)
}

(* Operators that must see their whole input before emitting: the
   pipeline segment distributed to workers stops below the first of
   these. *)
let is_breaker = function
  | Plan.Aggregate _ | Plan.Distinct _ | Plan.Sort _ | Plan.Skip_rows _
  | Plan.Limit_rows _ ->
    true
  | _ -> false

(* The operator chain from just above [Argument] up to the root.
   Plans are linear chains ([Optional]'s inner plan hangs off the
   operator itself and travels with it). *)
let ops_bottom_up plan =
  let rec go p acc =
    match Plan.input_of p with None -> acc | Some input -> go input (p :: acc)
  in
  go plan []

let rebuild ops =
  List.fold_left (fun input op -> Plan.with_input op input) Plan.Argument ops

let split_streaming ops =
  let rec go acc = function
    | op :: rest when not (is_breaker op) -> go (op :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go [] ops

(* [parallel_map runner n task] with sequential first-error semantics
   and per-task monotonic timing (for the observability report). *)
let parallel_map runner n task =
  let out = Array.make n None in
  runner.run_tasks n (fun i ->
      let t0 = Clock.now_us () in
      let r =
        match task i with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      out.(i) <- Some (r, Clock.now_us () - t0));
  let worker_us = ref 0 in
  let results =
    Array.init n (fun i ->
        match out.(i) with
        | Some (r, dur) ->
          worker_us := !worker_us + dur;
          r
        | None -> assert false)
  in
  (* lowest-index failure first, matching the sequential error order *)
  ( Array.map
      (fun r ->
        match r with
        | Ok v -> v
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
      results,
    !worker_us )

(* Same grouping as the sequential Aggregate: hash on the key vector,
   groups in order of first occurrence, rows in input order. *)
let group_rows cfg g keys rows =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun row ->
      let k = List.map (fun (_, e) -> Eval.eval_expr cfg g row e) keys in
      let h = Hashtbl.hash (List.map Value.hash k) in
      let bucket = try Hashtbl.find tbl h with Not_found -> [] in
      match
        List.find_opt (fun (k', _) -> List.equal Value.equal_total k k') bucket
      with
      | Some (_, cell) -> cell := row :: !cell
      | None ->
        let cell = ref [ row ] in
        Hashtbl.replace tbl h ((k, cell) :: bucket);
        order := (k, cell) :: !order)
    rows;
  List.rev_map (fun (k, cell) -> (k, List.rev !cell)) !order

(* One group's contribution from one morsel. *)
type partial_group = {
  pg_key : Value.t list;
  pg_first : Record.t option;  (* the group's first row in this morsel *)
  pg_count : int;
  pg_vals : Value.t list list;  (* per agg spec, values in row order *)
}

(* Combine accumulator for one group across morsels. *)
type group_acc = {
  mutable a_first : Record.t option;  (* from the lowest morsel *)
  mutable a_count : int;
  a_vals : Value.t list list array;  (* per spec, morsel lists, reversed *)
}

let combine_partials nspecs (partials : partial_group list array) =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  Array.iter
    (List.iter (fun pg ->
         let h = Hashtbl.hash (List.map Value.hash pg.pg_key) in
         let bucket = try Hashtbl.find tbl h with Not_found -> [] in
         let acc =
           match
             List.find_opt
               (fun (k', _) -> List.equal Value.equal_total pg.pg_key k')
               bucket
           with
           | Some (_, acc) -> acc
           | None ->
             let acc =
               {
                 a_first = None;
                 a_count = 0;
                 a_vals = Array.make nspecs [];
               }
             in
             Hashtbl.replace tbl h ((pg.pg_key, acc) :: bucket);
             order := (pg.pg_key, acc) :: !order;
             acc
         in
         (match acc.a_first with
         | None -> acc.a_first <- pg.pg_first
         | Some _ -> ());
         acc.a_count <- acc.a_count + pg.pg_count;
         List.iteri
           (fun j vals -> acc.a_vals.(j) <- vals :: acc.a_vals.(j))
           pg.pg_vals))
    partials;
  List.rev !order

(* K-way merge of per-morsel stably-sorted chunks.  Ties prefer the
   lower morsel index, so the result equals a stable sort of the
   morsel-ordered concatenation — i.e. the sequential Sort output. *)
let merge_sorted compare_rows (chunks : Record.t list array) =
  let heads = Array.copy chunks in
  let total = Array.fold_left (fun n l -> n + List.length l) 0 heads in
  let out = ref [] in
  for _ = 1 to total do
    let best = ref (-1) in
    Array.iteri
      (fun i l ->
        match l with
        | [] -> ()
        | x :: _ ->
          if
            !best < 0
            || compare_rows x (List.hd heads.(!best)) < 0
          then best := i)
      heads;
    out := List.hd heads.(!best) :: !out;
    heads.(!best) <- List.tl heads.(!best)
  done;
  List.rev !out

let run runner cfg g ~fields plan table =
  let sequential () = Exec.run cfg g ~fields plan table in
  if runner.workers <= 1 then sequential ()
  else
    let ops = ops_bottom_up plan in
    (* Pick the morsel source.  A driving table with several rows (a
       later part of a multi-part query) is already materialised — its
       rows are the morsels.  Otherwise the bottom operator (typically
       a leaf scan) is run sequentially once and its output split. *)
    let source =
      if Table.row_count table > 1 then Some (`Windows, ops)
      else
        match ops with
        | src :: rest when not (is_breaker src) -> Some (`Op src, rest)
        | _ -> None
    in
    match source with
    | None -> sequential ()
    | Some (src, rest_ops) -> (
      let source_len, slice =
        match src with
        | `Windows ->
          (* the driving table is already materialised: morsels are
             zero-copy windows over its shared row buffer *)
          ( Table.row_count table,
            fun lo len -> Table.to_seq (Table.sub table ~off:lo ~len) )
        | `Op op ->
          let rows_arr =
            Array.of_seq (Exec.rows cfg g (rebuild [ op ]) (Table.to_seq table))
          in
          ( Array.length rows_arr,
            fun lo len -> Seq.init len (fun j -> rows_arr.(lo + j)) )
      in
      if source_len < 2 then sequential ()
      else begin
        let pipeline_ops, above_ops = split_streaming rest_ops in
        (* more morsels than workers, so the pool's work stealing can
           even out skew (a hub node in one morsel, misses in another) *)
        let morsel_count = min source_len (runner.workers * 4) in
        let bounds =
          Array.init morsel_count (fun i ->
              let lo = i * source_len / morsel_count
              and hi = (i + 1) * source_len / morsel_count in
              (lo, hi - lo))
        in
        let morsel i =
          let lo, len = bounds.(i) in
          slice lo len
        in
        let pipe chunk_plan i = Exec.rows cfg g chunk_plan (morsel i) in
        let note worker_us =
          Trace.note "parallel_workers" worker_us
            ~attrs:
              [
                ("morsels", string_of_int morsel_count);
                ("workers", string_of_int runner.workers);
              ]
        in
        let finish_rows above rows_list =
          Table.of_seq ~fields
            (Exec.rows cfg g (rebuild above) (List.to_seq rows_list))
        in
        match above_ops with
        | Plan.Aggregate { keys; aggs; _ } :: rest_above ->
          let chunk_plan = rebuild pipeline_ops in
          let nspecs = List.length aggs in
          let partials, worker_us =
            parallel_map runner morsel_count (fun i ->
                let rows = List.of_seq (pipe chunk_plan i) in
                let groups =
                  if keys = [] then [ ([], rows) ]
                  else group_rows cfg g keys rows
                in
                List.map
                  (fun (kvals, grows) ->
                    {
                      pg_key = kvals;
                      pg_first =
                        (match grows with r :: _ -> Some r | [] -> None);
                      pg_count = List.length grows;
                      pg_vals =
                        List.map
                          (fun (_, spec) -> Agg.arg_values cfg g grows spec)
                          aggs;
                    })
                  groups)
          in
          note worker_us;
          let combined = combine_partials nspecs partials in
          let agg_rows =
            List.map
              (fun (kvals, acc) ->
                let base =
                  if keys = [] then Record.empty
                  else
                    Record.of_list
                      (List.map2 (fun (name, _) v -> (name, v)) keys kvals)
                in
                let r = ref base in
                List.iteri
                  (fun j (name, spec) ->
                    let values = List.concat (List.rev acc.a_vals.(j)) in
                    r :=
                      Record.add !r name
                        (Agg.finalize cfg g ~first_row:acc.a_first
                           ~row_count:acc.a_count values spec))
                  aggs;
                !r)
              combined
          in
          finish_rows rest_above agg_rows
        | Plan.Sort { by; _ } :: rest_above ->
          let chunk_plan = rebuild pipeline_ops in
          let compare_rows r1 r2 =
            let rec go = function
              | [] -> 0
              | (e, d) :: rest ->
                let c =
                  Value.compare_total (Eval.eval_expr cfg g r1 e)
                    (Eval.eval_expr cfg g r2 e)
                in
                let c = match d with Plan.Asc -> c | Plan.Desc -> -c in
                if c <> 0 then c else go rest
            in
            go by
          in
          let chunks, worker_us =
            parallel_map runner morsel_count (fun i ->
                List.stable_sort compare_rows (List.of_seq (pipe chunk_plan i)))
          in
          note worker_us;
          finish_rows rest_above (merge_sorted compare_rows chunks)
        | (Plan.Limit_rows _ as lim) :: _ ->
          (* push the limit into each morsel (bounds per-morsel work);
             [above_ops] still starts with the Limit, which re-applies
             it to the merged stream *)
          let chunk_plan = rebuild (pipeline_ops @ [ lim ]) in
          let chunks, worker_us =
            parallel_map runner morsel_count (fun i ->
                List.of_seq (pipe chunk_plan i))
          in
          note worker_us;
          finish_rows above_ops (List.concat (Array.to_list chunks))
        | (Plan.Distinct _ as d) :: _ ->
          (* per-morsel dedup keeps each morsel's first occurrences —
             idempotent, so the global Distinct in [above_ops] yields
             exactly the sequential result while merging fewer rows *)
          let chunk_plan = rebuild (pipeline_ops @ [ d ]) in
          let chunks, worker_us =
            parallel_map runner morsel_count (fun i ->
                List.of_seq (pipe chunk_plan i))
          in
          note worker_us;
          finish_rows above_ops (List.concat (Array.to_list chunks))
        | [] ->
          (* whole plan is one streaming pipeline: workers materialise
             their morsel outputs straight into tables, and the merge
             is an ordered bag-union blit *)
          let chunk_plan = rebuild pipeline_ops in
          let chunks, worker_us =
            parallel_map runner morsel_count (fun i ->
                Table.of_seq ~fields (pipe chunk_plan i))
          in
          note worker_us;
          Table.concat ~fields (Array.to_list chunks)
        | above ->
          (* remaining breaker is Skip (or a breaker chain): ordered
             concatenation of per-morsel streams is the sequential
             stream; the remainder runs on it sequentially *)
          let chunk_plan = rebuild pipeline_ops in
          let chunks, worker_us =
            parallel_map runner morsel_count (fun i ->
                List.of_seq (pipe chunk_plan i))
          in
          note worker_us;
          finish_rows above (List.concat (Array.to_list chunks))
      end)
