(** Morsel-driven parallel execution of read-only plans.

    {!run} produces the {e same table in the same row order} as
    {!Exec.run}: the leaf scan's output (or a multi-row driving table)
    is split into contiguous morsels, the streaming pipeline above it
    runs per morsel on worker domains, and results merge at the first
    pipeline breaker — ordered concatenation for plain streams,
    per-morsel pre-aggregation combined in morsel order for Aggregate
    (bitwise-identical even for non-associative float folds), a
    stability-preserving k-way merge for Sort, and per-morsel push-down
    for Limit and Distinct.  Everything above that breaker, and any
    plan shape that does not decompose, runs sequentially.

    Error semantics match the sequential executor's first-error
    behaviour: the lowest-index morsel's exception is re-raised.

    The graph, config and plan are shared across domains read-only;
    callers must guarantee the plan is read-only (the engine only
    routes reads here — writes stay single-writer). *)

open Cypher_graph
open Cypher_table
open Cypher_semantics

type runner = {
  workers : int;  (** parallelism budget, the calling domain included *)
  run_tasks : int -> (int -> unit) -> unit;
      (** [run_tasks n f] executes [f 0 .. f (n-1)] each exactly once,
          possibly on other domains, returning once all have finished.
          [f] must not raise.  The engine supplies
          {!Cypher_engine.Domain_pool.run}; tests can supply a
          sequential or shuffling runner. *)
}

val run :
  runner -> Config.t -> Graph.t -> fields:string list -> Plan.t -> Table.t -> Table.t
(** Drop-in parallel replacement for {!Exec.run}.  Falls back to the
    sequential executor when [workers <= 1], when the source has fewer
    than two rows, or when the plan's bottom operator is a pipeline
    breaker. *)
