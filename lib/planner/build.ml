open Cypher_graph
open Cypher_ast
open Ast

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

type compiled = { plan : Plan.t; fields : string list }

module Sset = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Naming                                                              *)
(* ------------------------------------------------------------------ *)

(* Internal variables start with '#', which the lexer cannot produce, so
   they can never collide with user variables. *)
let counter = ref 0

let fresh prefix =
  incr counter;
  Printf.sprintf "#%s%d" prefix !counter

(* A path pattern with every position named: node variables n0..nk and a
   relationship variable per hop. *)
type named_path = {
  orig : path_pattern;
  node_vars : string array; (* length k+1 *)
  rel_hops : (rel_pattern * string) array; (* length k *)
}

let name_path (pp : path_pattern) =
  if pp.pp_shortest <> No_shortest then
    unsupported
      "shortestPath inside a larger pattern is evaluated by the reference \
       engine";
  let node_var (np : node_pattern) =
    match np.np_name with Some a -> a | None -> fresh "node"
  in
  let node_vars =
    Array.of_list
      (node_var pp.pp_first :: List.map (fun (_, np) -> node_var np) pp.pp_rest)
  in
  let rel_hops =
    Array.of_list
      (List.map
         (fun ((rp : rel_pattern), _) ->
           let v = match rp.rp_name with Some a -> a | None -> fresh "rel" in
           (rp, v))
         pp.pp_rest)
  in
  { orig = pp; node_vars; rel_hops }

let hop_binding_of (rp : rel_pattern) var =
  match rp.rp_regex, rp.rp_len with
  | Some _, _ -> Plan.Rel_list var (* a regex hop always binds a list *)
  | None, None -> Plan.Single_rel var
  | None, Some _ -> Plan.Rel_list var

let node_patterns (pp : path_pattern) =
  Array.of_list (pp.pp_first :: List.map snd pp.pp_rest)

(* ------------------------------------------------------------------ *)
(* Cardinality estimation                                              *)
(* ------------------------------------------------------------------ *)

let start_cost stats bound (np : node_pattern) =
  match np.np_name with
  | Some a when Sset.mem a bound -> 0.5
  | _ -> (
    let indexed =
      List.exists
        (fun label ->
          List.exists
            (fun (key, _) -> Stats.has_index stats ~label ~key)
            np.np_props)
        np.np_labels
    in
    let base =
      match np.np_labels with
      | l :: _ -> Stats.label_cardinality stats l
      | [] -> Stats.node_count stats
    in
    let sel = if np.np_props <> [] then Stats.prop_selectivity stats else 1. in
    let cost = Float.max 1. (base *. sel) in
    if indexed then Float.max 1. (cost *. 0.1) else cost)

(* Cheapest starting position of a path pattern: its left or right end. *)
let orientation_cost stats bound (nps : node_pattern array) =
  let left = start_cost stats bound nps.(0) in
  let right = start_cost stats bound nps.(Array.length nps - 1) in
  if left <= right then (`Left, left) else (`Right, right)

(* ------------------------------------------------------------------ *)
(* Predicates for node/relationship pattern constraints                *)
(* ------------------------------------------------------------------ *)

let conj = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc e -> E_and (acc, e)) e rest)

let node_constraints ~skip_labels var (np : node_pattern) =
  let labels =
    match np.np_labels with
    | [] -> []
    | ls ->
      let ls = if skip_labels then List.tl ls else ls in
      if ls = [] then [] else [ E_has_labels (E_var var, ls) ]
  in
  let props =
    List.map (fun (k, e) -> E_cmp (Eq, E_prop (E_var var, k), e)) np.np_props
  in
  labels @ props

let rel_constraints (rp : rel_pattern) var =
  match rp.rp_len with
  | None ->
    List.map (fun (k, e) -> E_cmp (Eq, E_prop (E_var var, k), e)) rp.rp_props
  | Some _ ->
    (* every relationship of the variable-length hop must satisfy the
       property map *)
    List.map
      (fun (k, e) ->
        E_quantified
          (Q_all, "#r", E_var var, E_cmp (Eq, E_prop (E_var "#r", k), e)))
      rp.rp_props

let add_filters plan = function
  | [] -> plan
  | preds -> (
    match conj preds with
    | Some pred -> Plan.Filter { pred; input = plan }
    | None -> plan)

(* ------------------------------------------------------------------ *)
(* Compiling one path pattern                                          *)
(* ------------------------------------------------------------------ *)

let flip_dir = function
  | Left_to_right -> Right_to_left
  | Right_to_left -> Left_to_right
  | Undirected -> Undirected

let plan_dir = function
  | Left_to_right -> Plan.Out
  | Right_to_left -> Plan.In
  | Undirected -> Plan.Both

(* Produces the sequence (start node pattern, hops) in traversal order
   for the chosen orientation, where each hop is
   (rel pattern, rel var, target node pattern, target node var). *)
let traversal named = function
  | `Left ->
    let nps = node_patterns named.orig in
    let hops =
      List.mapi
        (fun i (rp, rv) -> (rp, rv, nps.(i + 1), named.node_vars.(i + 1)))
        (Array.to_list named.rel_hops)
    in
    ((nps.(0), named.node_vars.(0)), hops)
  | `Right ->
    let nps = node_patterns named.orig in
    let k = Array.length named.rel_hops in
    let hops =
      List.rev
        (List.mapi
           (fun i (rp, rv) ->
             ({ rp with rp_dir = flip_dir rp.rp_dir }, rv, nps.(i),
              named.node_vars.(i)))
           (Array.to_list named.rel_hops))
    in
    ((nps.(k), named.node_vars.(k)), hops)

let compile_start ~stats bound (np, var) input =
  if Sset.mem var bound then
    (* already bound: only check the remaining constraints *)
    add_filters input (node_constraints ~skip_labels:false var np)
  else
    (* prefer an index seek: a label with an indexed equality property
       whose value expression does not use the pattern's own variables *)
    let own = Sset.of_list (Ast.free_node_pattern np) in
    let indexed =
      List.find_map
        (fun label ->
          List.find_map
            (fun (key, value) ->
              if
                Stats.has_index stats ~label ~key
                && List.for_all
                     (fun v -> not (Sset.mem v own))
                     (Ast.expr_free_vars value)
              then Some (label, key, value)
              else None)
            np.np_props)
        np.np_labels
    in
    match indexed with
    | Some (label, key, value) ->
      let seek = Plan.Node_index_seek { var; label; key; value; input } in
      let remaining_props =
        List.filter (fun (k, _) -> not (String.equal k key)) np.np_props
      in
      let remaining_labels =
        List.filter (fun l -> not (String.equal l label)) np.np_labels
      in
      add_filters seek
        (node_constraints ~skip_labels:false var
           { np with np_props = remaining_props; np_labels = remaining_labels })
    | None -> (
      match np.np_labels with
      | l :: _ ->
        let scan = Plan.Node_by_label_scan { var; label = l; input } in
        add_filters scan (node_constraints ~skip_labels:true var np)
      | [] ->
        let scan = Plan.All_nodes_scan { var; input } in
        add_filters scan (node_constraints ~skip_labels:false var np))

let compile_hop ~scan_rels from_var (rp, rel_var, np, node_var) input =
  let dir = plan_dir rp.rp_dir in
  match rp.rp_regex with
  | Some regex ->
    (* RPQ hop: the NFA runs on the product graph inside the operator;
       relationship property maps quantify over the traversed list, as
       for a variable-length hop *)
    let expand =
      Plan.Regex_expand
        { from_ = from_var; rel = rel_var; regex; dir; to_ = node_var; input }
    in
    let rel_props =
      List.map
        (fun (k, e) ->
          E_quantified
            (Q_all, "#r", E_var rel_var, E_cmp (Eq, E_prop (E_var "#r", k), e)))
        rp.rp_props
    in
    add_filters expand
      (node_constraints ~skip_labels:false node_var np @ rel_props)
  | None ->
  let expand =
    match rp.rp_len with
    | None ->
      Plan.Expand
        {
          from_ = from_var;
          rel = rel_var;
          types = rp.rp_types;
          dir;
          to_ = node_var;
          scan_rels;
          input;
        }
    | Some len ->
      let min_len, max_len = Ast.range_of_len (Some len) in
      Plan.Var_expand
        {
          from_ = from_var;
          rel = rel_var;
          types = rp.rp_types;
          dir;
          min_len;
          max_len;
          to_ = node_var;
          input;
        }
  in
  add_filters expand
    (node_constraints ~skip_labels:false node_var np @ rel_constraints rp rel_var)

let compile_path ~stats ~scan_rels bound named input =
  let orient, _cost = orientation_cost stats bound (node_patterns named.orig) in
  (* prefer a bound endpoint over the estimate when one exists *)
  let orient =
    let nps = node_patterns named.orig in
    let left_bound = Sset.mem named.node_vars.(0) bound in
    let right_bound =
      Sset.mem named.node_vars.(Array.length nps - 1) bound
    in
    if left_bound then `Left else if right_bound then `Right else orient
  in
  (* a regex hop reads its labels left to right; traversing it from the
     right would need the reversed automaton, so keep the written
     orientation *)
  let orient =
    if Array.exists (fun (rp, _) -> rp.rp_regex <> None) named.rel_hops then
      `Left
    else orient
  in
  let (start_np, start_var), hops = traversal named orient in
  (* if the pattern has no anchor at all but the first hop has a typed
     rigid relationship, a relationship-type scan is the cheapest leaf *)
  let type_total types =
    List.fold_left
      (fun acc t -> acc +. (Stats.rel_count stats *. Stats.type_selectivity stats t))
      0. types
  in
  let plan, chain_start, remaining_hops =
    match hops with
    | (rp, rel_var, np, node_var) :: rest
      when (not scan_rels)
           && (not (Sset.mem start_var bound))
           && start_np.np_labels = [] && start_np.np_props = []
           && rp.rp_len = None && rp.rp_regex = None && rp.rp_types <> []
           && type_total rp.rp_types < Stats.node_count stats ->
      let scan =
        Plan.Rel_type_scan
          {
            rel = rel_var;
            types = rp.rp_types;
            from_ = start_var;
            to_ = node_var;
            dir = plan_dir rp.rp_dir;
            input;
          }
      in
      ( add_filters scan
          (node_constraints ~skip_labels:false node_var np
          @ rel_constraints rp rel_var),
        node_var,
        rest )
    | _ -> (compile_start ~stats bound (start_np, start_var) input, start_var, hops)
  in
  let plan, _ =
    List.fold_left
      (fun (plan, from_var) (rp, rel_var, np, node_var) ->
        (compile_hop ~scan_rels from_var (rp, rel_var, np, node_var) plan, node_var))
      (plan, chain_start) remaining_hops
  in
  (* GQL restrictor: filter on the reconstructed steps, in the original
     left-to-right orientation *)
  let plan =
    if named.orig.pp_restr = Walk then plan
    else
      Plan.Path_restrict
        {
          restr = named.orig.pp_restr;
          start_var = named.node_vars.(0);
          hops =
            List.map
              (fun (rp, rv) -> hop_binding_of rp rv)
              (Array.to_list named.rel_hops);
          input = plan;
        }
  in
  (* named path projection, in the original left-to-right orientation *)
  let plan =
    match named.orig.pp_name with
    | None -> plan
    | Some path_var ->
      Plan.Project_path
        {
          var = path_var;
          start_var = named.node_vars.(0);
          hops =
            List.map
              (fun (rp, rv) -> hop_binding_of rp rv)
              (Array.to_list named.rel_hops);
          input = plan;
        }
  in
  let bound =
    Array.fold_left (fun b v -> Sset.add v b) bound named.node_vars
  in
  let bound =
    Array.fold_left (fun b (_, v) -> Sset.add v b) bound named.rel_hops
  in
  let bound =
    match named.orig.pp_name with Some a -> Sset.add a bound | None -> bound
  in
  (plan, bound)

(* ------------------------------------------------------------------ *)
(* Compiling a shortestPath / allShortestPaths / cheapestPath pattern  *)
(* ------------------------------------------------------------------ *)

(* Both endpoints are compiled as ordinary starts (index seek, label
   scan, bound-variable check), in the reference engine's order — the
   start node first, then the end node — so every property expression
   sees the same bindings.  The search itself runs in the dedicated
   operator.  Anything needing the reference engine's deferred property
   checks (an expression referencing a variable the search itself binds)
   is left to the fallback. *)
let compile_shortest ~stats bound (pp : path_pattern) input =
  let rp, np_end =
    match pp.pp_rest with
    | [ seg ] -> seg
    | segs ->
      unsupported
        "shortestPath over %d relationship segments is evaluated by the \
         reference engine"
        (List.length segs)
  in
  if rp.rp_regex <> None then
    unsupported
      "shortestPath over a type regex is evaluated by the reference engine";
  let start_var =
    match pp.pp_first.np_name with Some a -> a | None -> fresh "node"
  in
  let end_var = match np_end.np_name with Some a -> a | None -> fresh "node" in
  let rel_var = match rp.rp_name with Some a -> a | None -> fresh "rel" in
  let internal =
    (match rp.rp_name with Some a -> [ a ] | None -> [])
    @ match pp.pp_name with Some a -> [ a ] | None -> []
  in
  List.iter
    (fun v ->
      if Sset.mem v bound then
        unsupported
          "a rebound shortest-path variable is evaluated by the reference \
           engine")
    internal;
  let refs props = List.concat_map (fun (_, e) -> Ast.expr_free_vars e) props in
  let end_name = match np_end.np_name with Some a -> [ a ] | None -> [] in
  if
    List.exists
      (fun v -> List.mem v (internal @ end_name))
      (refs pp.pp_first.np_props)
    || List.exists (fun v -> List.mem v internal) (refs np_end.np_props)
  then
    unsupported
      "shortest-path endpoint properties referencing variables the search \
       binds are evaluated by the reference engine";
  let plan = compile_start ~stats bound (pp.pp_first, start_var) input in
  let bound = Sset.add start_var bound in
  let plan = compile_start ~stats bound (np_end, end_var) plan in
  let bound = Sset.add end_var bound in
  let min_len, max_len = Ast.range_of_len rp.rp_len in
  let dir = plan_dir rp.rp_dir in
  let plan =
    match pp.pp_shortest with
    | Cheapest cost_prop ->
      if rp.rp_len = None || min_len > 1 || max_len <> None then
        (* the reference engine owns the typed error message *)
        unsupported
          "cheapestPath over a bounded pattern is evaluated by the reference \
           engine";
      Plan.Cheapest_path
        {
          from_ = start_var;
          to_ = end_var;
          rel = rel_var;
          types = rp.rp_types;
          dir;
          props = rp.rp_props;
          cost_prop;
          restr = pp.pp_restr;
          path = pp.pp_name;
          input = plan;
        }
    | Shortest | All_shortest ->
      Plan.Shortest_path
        {
          from_ = start_var;
          to_ = end_var;
          rel = rel_var;
          rel_single = (rp.rp_len = None);
          types = rp.rp_types;
          dir;
          props = rp.rp_props;
          min_len;
          max_len;
          all = (pp.pp_shortest = All_shortest);
          restr = pp.pp_restr;
          path = pp.pp_name;
          input = plan;
        }
    | No_shortest -> assert false
  in
  let bound = Sset.add rel_var bound in
  let bound =
    match pp.pp_name with Some a -> Sset.add a bound | None -> bound
  in
  (plan, bound)

(* ------------------------------------------------------------------ *)
(* Compiling a pattern tuple (one MATCH)                               *)
(* ------------------------------------------------------------------ *)

let pattern_vars named =
  Sset.union
    (Sset.of_list (Array.to_list named.node_vars))
    (Sset.of_list (List.map snd (Array.to_list named.rel_hops)))

(* A tuple with one shortest-path pattern compiles when every other
   pattern is a bare node: then the tuple-wide relationship-uniqueness
   state is empty during the search and the operator's result is exactly
   the reference engine's.  Relationship hops elsewhere in the tuple
   would have to feed their used-relationship set into the search (they
   change *which* path is shortest, not just filter it), so those fall
   back. *)
let compile_tuple_with_shortest ~stats bound sp plain input =
  if List.exists (fun (pp : path_pattern) -> pp.pp_rest <> []) plain then
    unsupported
      "shortestPath alongside other relationship patterns is evaluated by \
       the reference engine";
  let sp_names = Sset.of_list (Ast.free_path_pattern sp) in
  let plain_own = Sset.of_list (List.concat_map Ast.free_path_pattern plain) in
  List.iter
    (fun (pp : path_pattern) ->
      List.iter
        (fun (_, e) ->
          List.iter
            (fun v ->
              if
                Sset.mem v sp_names
                && (not (Sset.mem v plain_own))
                && not (Sset.mem v bound)
              then
                unsupported
                  "pattern properties referencing a shortest-path variable \
                   are evaluated by the reference engine")
            (Ast.expr_free_vars e))
        pp.pp_first.np_props)
    plain;
  (* the node-only patterns first, in written order, then the search *)
  let plan, bound =
    List.fold_left
      (fun (plan, bound) pp ->
        compile_path ~stats ~scan_rels:false bound (name_path pp) plan)
      (input, bound) plain
  in
  compile_shortest ~stats bound sp plan

let compile_pattern_tuple ~stats ~scan_rels ?(ordering = `Greedy) bound
    patterns input =
  match
    List.partition
      (fun (pp : path_pattern) -> pp.pp_shortest <> No_shortest)
      patterns
  with
  | [ sp ], plain when not scan_rels ->
    compile_tuple_with_shortest ~stats bound sp plain input
  | _ :: _ :: _, _ ->
    unsupported
      "multiple shortest-path patterns in one MATCH are evaluated by the \
       reference engine"
  | _ ->
  let named = List.map name_path patterns in
  (* greedy ordering: repeatedly pick the pattern with the cheapest start
     given what is bound so far (connected patterns get cost 0.5 via a
     bound endpoint); `Textual keeps the written order and is used by the
     ablation benchmark *)
  let rec order bound acc remaining =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let scored =
        List.map
          (fun np ->
            (snd (orientation_cost stats bound (node_patterns np.orig)), np))
          remaining
      in
      let best =
        List.fold_left
          (fun (bc, bn) (c, n) -> if c < bc then (c, n) else (bc, bn))
          (List.hd scored) (List.tl scored)
      in
      let _, chosen = best in
      let rest = List.filter (fun np -> np != chosen) remaining in
      order (Sset.union bound (pattern_vars chosen)) (chosen :: acc) rest
  in
  let ordered = match ordering with `Greedy -> order bound [] named | `Textual -> named in
  let plan, bound =
    List.fold_left
      (fun (plan, bound) np -> compile_path ~stats ~scan_rels bound np plan)
      (input, bound) ordered
  in
  (* relationship isomorphism across the whole MATCH *)
  let all_hops =
    List.concat_map
      (fun np ->
        List.map
          (fun (rp, rv) -> hop_binding_of rp rv)
          (Array.to_list np.rel_hops))
      named
  in
  let plan =
    if List.length all_hops > 1 then
      Plan.Rel_uniqueness { vars = all_hops; input = plan }
    else plan
  in
  (plan, bound)

(* ------------------------------------------------------------------ *)
(* Projections                                                         *)
(* ------------------------------------------------------------------ *)

let expand_star proj visible =
  if not proj.pj_star then proj.pj_items
  else
    List.map (fun v -> { ri_expr = E_var v; ri_alias = Some v }) visible
    @ proj.pj_items

let item_name = Cypher_semantics.Clauses.item_name

let compile_projection proj visible input =
  let items = expand_star proj visible in
  if items = [] then unsupported "projection with no columns";
  let names = List.map item_name items in
  let aggregating =
    List.exists
      (fun i -> Cypher_semantics.Agg.contains_aggregate i.ri_expr)
      items
  in
  (* ORDER BY: rewrite against the items, then decide whether the sort
     can run above the projection or needs source columns passed
     through. *)
  let order_by =
    List.map
      (fun (e, d) ->
        ( Cypher_semantics.Clauses.rewrite_order_expr items names e,
          match d with Asc -> Plan.Asc | Desc -> Plan.Desc ))
      proj.pj_order_by
  in
  let extras =
    List.sort_uniq String.compare
      (List.concat_map (fun (e, _) -> Ast.expr_free_vars e) order_by)
    |> List.filter (fun v -> not (List.mem v names))
  in
  if extras <> [] && (aggregating || proj.pj_distinct) then
    unsupported
      "ORDER BY on non-projected variables combined with aggregation or \
       DISTINCT";
  List.iter
    (fun (e, _) ->
      if Cypher_semantics.Agg.contains_aggregate e then
        unsupported "ORDER BY with an aggregate that is not a projected item")
    order_by;
  let plan =
    if not aggregating then
      Plan.Project
        {
          items =
            List.map (fun i -> (item_name i, i.ri_expr)) items
            @ List.map (fun v -> (v, E_var v)) extras;
          input;
        }
    else begin
      let keys =
        List.filter_map
          (fun i ->
            if Cypher_semantics.Agg.contains_aggregate i.ri_expr then None
            else Some (item_name i, i.ri_expr))
          items
      in
      let aggs = ref [] in
      let out_items =
        List.map
          (fun i ->
            if Cypher_semantics.Agg.contains_aggregate i.ri_expr then begin
              let rewritten, specs =
                Cypher_semantics.Agg.extract_aggregates i.ri_expr
              in
              aggs := !aggs @ specs;
              (item_name i, rewritten)
            end
            else (item_name i, E_var (item_name i)))
          items
      in
      let agg_plan = Plan.Aggregate { keys; aggs = !aggs; input } in
      Plan.Project { items = out_items; input = agg_plan }
    end
  in
  let plan = if proj.pj_distinct then Plan.Distinct { input = plan } else plan in
  let plan =
    if order_by = [] then plan else Plan.Sort { by = order_by; input = plan }
  in
  let plan =
    (* drop the ORDER BY passthrough columns *)
    if extras = [] then plan
    else
      Plan.Project
        { items = List.map (fun n -> (n, E_var n)) names; input = plan }
  in
  let plan =
    match proj.pj_skip with
    | Some e -> Plan.Skip_rows { count = e; input = plan }
    | None -> plan
  in
  let plan =
    match proj.pj_limit with
    | Some e -> Plan.Limit_rows { count = e; input = plan }
    | None -> plan
  in
  (plan, names)

(* ------------------------------------------------------------------ *)
(* Clauses                                                             *)
(* ------------------------------------------------------------------ *)

let compile_clauses ~stats ?(scan_rels = false) ?(ordering = `Greedy) ~visible
    clauses ret =
  let rec go plan bound visible = function
    | [] -> (
      match ret with
      | Some proj ->
        let plan, names = compile_projection proj visible plan in
        { plan; fields = names }
      | None ->
        (* end of a read segment feeding an update clause: project to the
           user-visible fields so internals do not leak *)
        let items = List.map (fun v -> (v, E_var v)) visible in
        let plan =
          if
            Sset.equal (Sset.of_list visible) bound
          then plan
          else Plan.Project { items; input = plan }
        in
        { plan; fields = visible })
    | C_match { opt = false; pattern; where } :: rest ->
      let plan, bound =
        compile_pattern_tuple ~stats ~scan_rels ~ordering bound pattern plan
      in
      let plan =
        match where with
        | Some pred -> Plan.Filter { pred; input = plan }
        | None -> plan
      in
      let visible =
        List.sort_uniq String.compare (visible @ Ast.free_pattern_tuple pattern)
      in
      go plan bound visible rest
    | C_match { opt = true; pattern; where } :: rest ->
      let inner, inner_bound =
        compile_pattern_tuple ~stats ~scan_rels ~ordering bound pattern
          Plan.Argument
      in
      let inner =
        match where with
        | Some pred -> Plan.Filter { pred; input = inner }
        | None -> inner
      in
      let introduced =
        List.filter
          (fun a -> not (Sset.mem a bound))
          (Ast.free_pattern_tuple pattern)
      in
      let plan = Plan.Optional { inner; introduced; input = plan } in
      let visible = List.sort_uniq String.compare (visible @ introduced) in
      go plan (Sset.union bound inner_bound) visible rest
    | C_with { proj; where } :: rest ->
      let plan, names = compile_projection proj visible plan in
      let plan =
        match where with
        | Some pred -> Plan.Filter { pred; input = plan }
        | None -> plan
      in
      go plan (Sset.of_list names) names rest
    | C_unwind (e, a) :: rest ->
      let plan = Plan.Unwind { expr = e; var = a; input = plan } in
      go plan (Sset.add a bound)
        (List.sort_uniq String.compare (a :: visible))
        rest
    | (C_create _ | C_delete _ | C_set _ | C_remove _ | C_merge _ | C_call _
      | C_foreach _)
      :: _ ->
      unsupported "update and CALL clauses are executed by the reference engine"
  in
  go Plan.Argument (Sset.of_list visible) visible clauses
