(* The replica side of WAL shipping.

   A replica is an ordinary server process whose store is fed by this
   module instead of by client writes: a background applier thread
   long-polls the primary for framed WAL records ('F'), verifies each
   frame with the same CRC and contiguity checks file recovery uses,
   and applies batches through {!Store.apply_replicated} — the
   recovery replay path — so the replica's MVCC store publishes the
   same versions the primary's did, under the same sequence numbers.

   Bootstrap and resync both go through the snapshot transfer ('B'):
   the replica persists the primary's snapshot bytes verbatim as its
   own snapshot file, which aligns its sequence numbering with the
   primary's (see the replication section of {!Cypher_storage.Store}).
   Any integrity failure on the stream — a decode error, a CRC
   mismatch, a sequence gap — triggers a resync rather than a
   best-effort apply: a replica must never guess. *)

module Store = Cypher_storage.Store
module Wal = Cypher_storage.Wal
module Client = Cypher_server.Client
module Registry = Cypher_obs.Registry
module Clock = Cypher_obs.Clock

let m_lag =
  Registry.gauge ~help:"records the primary has committed but this replica has not applied"
    "cypher_repl_lag_records"

let m_records =
  Registry.counter ~help:"WAL records applied from the replication stream"
    "cypher_repl_records_applied_total"

let m_batches =
  Registry.counter ~help:"replication batches applied (one local fsync each)"
    "cypher_repl_batches_applied_total"

let m_resyncs =
  Registry.counter ~help:"full snapshot resyncs (bootstrap included)"
    "cypher_repl_resyncs_total"

let m_integrity =
  Registry.counter
    ~help:"replication batches rejected by CRC or sequence checks"
    "cypher_repl_integrity_failures_total"

let m_reconnects =
  Registry.counter ~help:"reconnections to the primary"
    "cypher_repl_reconnects_total"

let m_apply =
  Registry.histogram ~help:"replication batch apply latency (microsecond buckets)"
    "cypher_repl_apply_latency"

type config = {
  fetch_max_records : int;  (* records per long-poll answer *)
  fetch_wait_ms : int;  (* primary-side long-poll budget *)
  connect_timeout : float;
  io_timeout : float;  (* socket read/write timeout; must exceed the poll *)
  boot_timeout : float;  (* socket timeout during a snapshot transfer *)
  retry : Client.retry;  (* reconnect backoff *)
}

let default_config =
  {
    fetch_max_records = 4096;
    fetch_wait_ms = 200;
    connect_timeout = 2.0;
    io_timeout = 10.0;
    boot_timeout = 300.0;
    retry = { Client.attempts = 10; base_delay = 0.05; max_delay = 2.0 };
  }

type t = {
  config : config;
  store : Store.t;
  primary_host : string;
  primary_port : int;
  mutable client : Client.t option;
  mutable stopping : bool;
  mutable paused : bool;  (* tests freeze the applier to create lag *)
  mutable last_error : string option;
  mutable thread : Thread.t option;
}

let last_applied t = Store.last_seq t.store
let last_error t = t.last_error
let pause t = t.paused <- true
let resume t = t.paused <- false

(* Decodes and validates one fetched batch: every frame must pass the
   CRC check and the sequence numbers must be exactly [expect_seq],
   [expect_seq + 1], …  A gap means records were lost between primary
   and replica; a CRC failure means bytes were damaged.  Both are
   grounds for a resync, never for a partial apply. *)
let validate_batch ~expect_seq frames =
  let rec go expect acc = function
    | [] -> Ok (List.rev acc)
    | frame :: rest -> (
      match Wal.decode_framed frame with
      | Error e -> Error e
      | Ok r ->
        if r.Wal.seq <> expect then
          Error
            (Printf.sprintf "sequence gap: expected seq %d, batch carries %d"
               expect r.Wal.seq)
        else go (expect + 1) (r :: acc) rest)
  in
  go expect_seq [] frames

(* --- the applier ------------------------------------------------------- *)

let disconnect t =
  (match t.client with Some c -> Client.close c | None -> ());
  t.client <- None

(* (Re)establishes the primary connection with backoff.  Returns [None]
   only when stopping or when every attempt failed. *)
let connected t =
  match t.client with
  | Some c -> Some c
  | None -> (
    match
      Client.connect_retry ~retry:t.config.retry
        ~connect_timeout:t.config.connect_timeout ~timeout:t.config.io_timeout
        ~host:t.primary_host ~port:t.primary_port ()
    with
    | Ok c ->
      t.client <- Some c;
      t.last_error <- None;
      Some c
    | Error e ->
      t.last_error <- Some e;
      None)

(* Full resync: fetch the primary's committed snapshot and swap it in.
   Afterwards the store's [last_seq] is the snapshot's watermark and
   tailing resumes from there.  The transfer runs under the (much
   larger) bootstrap timeout: the primary encodes the whole committed
   image before the first chunk, which on a large store takes longer
   than any steady-state fetch is allowed to. *)
let resync t client =
  Client.set_timeout client t.config.boot_timeout;
  let fetched = Client.repl_bootstrap client in
  Client.set_timeout client t.config.io_timeout;
  match fetched with
  | Error e -> Error (Client.error_message e)
  | Ok bytes -> (
    match Store.reset_from_snapshot t.store bytes with
    | Ok () ->
      Registry.incr m_resyncs;
      Ok ()
    | Error _ as e -> e)

let apply_batch t frames =
  let expect_seq = Store.last_seq t.store + 1 in
  match validate_batch ~expect_seq frames with
  | Error e ->
    Registry.incr m_integrity;
    Error ("replication stream integrity: " ^ e)
  | Ok records -> (
    let t0 = Cypher_obs.Trace.now_us () in
    match Store.apply_replicated t.store records with
    | Ok () ->
      let dur = Cypher_obs.Trace.now_us () - t0 in
      Registry.observe_us m_apply dur;
      Registry.incr m_batches;
      Registry.add m_records (List.length records);
      (* Commit lineage: each applied record that carries a trace id
         gets a span on that trace, keyed by (trace_id, seq) — the
         same key the primary stamped on its "commit_durable" span. *)
      List.iter
        (fun r ->
          if r.Wal.trace <> 0 then
            Cypher_obs.Trace.note
              ~ctx:{ Cypher_obs.Trace.trace_id = r.Wal.trace; parent_span = 0 }
              ~attrs:[ ("seq", string_of_int r.Wal.seq) ]
              "replica_apply" dur)
        records;
      Ok ()
    | Error _ as e -> e)

(* One fetch/apply turn.  Any failure drops the connection (the next
   turn reconnects with backoff); an integrity or apply failure also
   forces a resync by leaving the store behind — the primary's floor
   check converts that into [b_resync] only when the records are gone,
   so transient failures just refetch the same batch. *)
let step t =
  match connected t with
  | None -> if not t.stopping then Thread.delay 0.05
  | Some client -> (
    match
      Client.repl_fetch client
        ~from_seq:(Store.last_seq t.store + 1)
        ~max_records:t.config.fetch_max_records
        ~wait_ms:t.config.fetch_wait_ms
    with
    | Error e ->
      t.last_error <- Some (Client.error_message e);
      disconnect t;
      Registry.incr m_reconnects
    | Ok batch -> (
      Registry.gauge_set m_lag
        (max 0 (batch.Client.b_last_seq - Store.last_seq t.store));
      if batch.Client.b_resync then (
        match resync t client with
        | Ok () -> Registry.gauge_set m_lag 0
        | Error e ->
          t.last_error <- Some e;
          disconnect t)
      else
        match batch.Client.b_records with
        | [] -> ()
        | frames -> (
          match apply_batch t frames with
          | Ok () ->
            Registry.gauge_set m_lag
              (max 0 (batch.Client.b_last_seq - Store.last_seq t.store))
          | Error e -> (
            (* integrity failure: do not trust the incremental stream —
               rebuild from a snapshot *)
            t.last_error <- Some e;
            match resync t client with
            | Ok () -> ()
            | Error e ->
              t.last_error <- Some e;
              disconnect t))))

let run t =
  while not t.stopping do
    if t.paused then Thread.delay 0.005 else step t
  done;
  disconnect t

let start ?(config = default_config) ~host ~port store =
  let t =
    {
      config;
      store;
      primary_host = host;
      primary_port = port;
      client = None;
      stopping = false;
      paused = false;
      last_error = None;
      thread = None;
    }
  in
  (* First contact synchronously: the caller learns immediately whether
     the primary is reachable, and the store is bootstrapped before the
     replica starts serving reads. *)
  match connected t with
  | None ->
    Error
      (Printf.sprintf "replica: cannot reach primary %s:%d%s" host port
         (match t.last_error with Some e -> ": " ^ e | None -> ""))
  | Some client -> (
    (* A replica with no applied history cannot prove it shares the
       primary's lineage — the primary may have been seeded from a
       snapshot at the same sequence number with entirely different
       contents — so an empty store always bootstraps.  A replica that
       has applied records before only re-bootstraps when the primary
       says its position is no longer served (retention / restart). *)
    let boot =
      if Store.last_seq store = 0 then resync t client
      else
        match
          Client.repl_fetch client ~from_seq:(Store.last_seq store + 1)
            ~max_records:1 ~wait_ms:0
        with
        | Error e -> Error (Client.error_message e)
        | Ok batch -> if batch.Client.b_resync then resync t client else Ok ()
    in
    match boot with
    | Error e ->
      disconnect t;
      Error ("replica bootstrap failed: " ^ e)
    | Ok () ->
      t.thread <- Some (Thread.create run t);
      Ok t)

let stop t =
  t.stopping <- true;
  Option.iter Thread.join t.thread;
  t.thread <- None

(* Blocks until the replica has applied at least [seq], with a bounded
   wall-clock budget; [true] iff it got there.  Tests and the session-
   consistency suite use this instead of sleeping. *)
let wait_for_seq t ~seq ~timeout =
  let deadline = Clock.now_ns () + int_of_float (timeout *. 1e9) in
  let rec wait () =
    if Store.last_seq t.store >= seq then true
    else if Clock.now_ns () >= deadline then false
    else begin
      Thread.delay 0.001;
      wait ()
    end
  in
  wait ()
