(* A replica-aware client: one logical connection that routes writes to
   the primary and spreads reads round-robin across replicas, while
   preserving read-your-writes session consistency.

   The consistency mechanism is the commit watermark: every write
   answer carries the store's sequence number after the commit, and
   the router keeps the highest one seen (the session high-water mark).
   A read sent to a replica carries that mark as the "min_seq" request
   option; the replica serves the read only once it has applied at
   least that much, waits a bounded time for it, and otherwise answers
   with a typed [Stale_replica] — on which the router falls through to
   the primary.  So a router never observes a state older than its own
   writes, whichever server answers.

   Not thread-safe: create one router per worker thread (the benchmark
   driver does exactly that). *)

module Engine = Cypher_engine.Engine
module Client = Cypher_server.Client
module Protocol = Cypher_server.Protocol
module Value = Cypher_values.Value
module Registry = Cypher_obs.Registry
module Trace = Cypher_obs.Trace

let m_reads_replica =
  Registry.counter ~help:"router reads served by a replica"
    "cypher_router_reads_replica_total"

let m_reads_primary =
  Registry.counter ~help:"router reads served by the primary"
    "cypher_router_reads_primary_total"

let m_stale_fallbacks =
  Registry.counter
    ~help:"router reads bounced by a stale replica and retried on the primary"
    "cypher_router_stale_fallbacks_total"

let m_replica_failures =
  Registry.counter
    ~help:"router replica connections dropped after a transport error"
    "cypher_router_replica_failures_total"

type endpoint = {
  ep_host : string;
  ep_port : int;
  mutable ep_client : Client.t option;  (* None while down *)
}

type config = {
  connect_timeout : float;
  io_timeout : float;
  retry : Client.retry;  (* for the initial primary connection *)
  min_seq_wait_ms : int;  (* replica-side freshness wait budget *)
}

let default_config =
  {
    connect_timeout = 2.0;
    io_timeout = 10.0;
    retry = Client.default_retry;
    min_seq_wait_ms = 200;
  }

type t = {
  config : config;
  primary : endpoint;
  replicas : endpoint array;
  mutable rr : int;  (* round-robin cursor *)
  mutable hw : int;  (* session high-water commit seq *)
  mutable tx_depth : int;  (* transactions are pinned to the primary *)
}

let high_water t = t.hw
let observe_seq t seq = if seq > t.hw then t.hw <- seq

let ep_connect config ~retry ep =
  match ep.ep_client with
  | Some c -> Ok c
  | None -> (
    match
      Client.connect_retry ~retry ~connect_timeout:config.connect_timeout
        ~timeout:config.io_timeout ~host:ep.ep_host ~port:ep.ep_port ()
    with
    | Ok c ->
      ep.ep_client <- Some c;
      Ok c
    | Error e -> Error e)

let ep_drop ep =
  (match ep.ep_client with Some c -> Client.close c | None -> ());
  ep.ep_client <- None

let create ?(config = default_config) ~primary ~replicas () =
  let endpoint (host, port) = { ep_host = host; ep_port = port; ep_client = None } in
  let t =
    {
      config;
      primary = endpoint primary;
      replicas = Array.of_list (List.map endpoint replicas);
      rr = 0;
      hw = 0;
      tx_depth = 0;
    }
  in
  (* the primary must be reachable up front; replicas connect lazily and
     a dead one just stops being picked *)
  match ep_connect config ~retry:config.retry t.primary with
  | Ok _ -> Ok t
  | Error e -> Error e

let close t =
  ep_drop t.primary;
  Array.iter ep_drop t.replicas

(* transaction keywords never reach classification: they pin the
   session to the primary for the duration *)
let keyword text = String.uppercase_ascii (String.trim text)

let plan_cache = lazy (Engine.create_plan_cache ())

let is_read t text =
  if t.tx_depth > 0 then false
  else
    match keyword text with
    | "BEGIN" | "COMMIT" | "ROLLBACK" -> false
    | _ -> (
      match Engine.classify_cached ~cache:(Lazy.force plan_cache) text with
      | Engine.Read_only -> true
      | Engine.Update -> false
      | exception _ -> false (* unparseable: let the primary report it *))

let track_tx t text outcome =
  match (keyword text, outcome) with
  | "BEGIN", Ok _ -> t.tx_depth <- t.tx_depth + 1
  | ("COMMIT" | "ROLLBACK"), Ok _ -> t.tx_depth <- max 0 (t.tx_depth - 1)
  | _ -> ()

let on_primary t ~params ~options text =
  match ep_connect t.config ~retry:t.config.retry t.primary with
  | Error e -> Error { Client.kind = Protocol.Server_error; message = e }
  | Ok c -> (
    match Client.query ~params ~options c text with
    | Ok r as ok ->
      observe_seq t r.Client.seq;
      ok
    | Error { Client.kind = Protocol.Protocol_violation; _ } as err ->
      (* transport failure: drop the connection so the next call
         redials.  Never auto-retried — a write whose answer was lost
         may have committed, and re-running it is not idempotent. *)
      ep_drop t.primary;
      err
    | Error _ as err -> err)

(* One read attempt on a replica; [None] means "use the primary"
   (replica down, or stale past its wait budget). *)
let on_replica t ep ~params ~options text =
  let one_shot = { Client.default_retry with attempts = 1 } in
  match ep_connect t.config ~retry:one_shot ep with
  | Error _ ->
    Registry.incr m_replica_failures;
    None
  | Ok c -> (
    let options =
      if t.hw > 0 then
        ("min_seq", Value.Int t.hw)
        :: ("min_seq_wait_ms", Value.Int t.config.min_seq_wait_ms)
        :: options
      else options
    in
    match Client.query ~params ~options c text with
    | Ok _ as ok -> Some ok
    | Error { Client.kind = Protocol.Stale_replica; _ } ->
      Registry.incr m_stale_fallbacks;
      None
    | Error { Client.kind = Protocol.Protocol_violation; _ } ->
      (* reads are safe to retry elsewhere: drop this replica and let
         the primary serve the request *)
      ep_drop ep;
      Registry.incr m_replica_failures;
      None
    | Error _ as err -> Some err (* a real query error: report it *))

let query ?(params = []) ?(options = []) t text =
  (* One trace context per logical query: a read that bounces off a
     stale replica and retries on the primary shows up as two server
     spans under the same trace id.  Reuse the caller's context when
     one is already installed. *)
  let ctx =
    match Trace.current_context () with
    | Some c -> c
    | None -> { Trace.trace_id = Trace.new_id (); parent_span = 0 }
  in
  Trace.with_context ctx @@ fun () ->
  if is_read t text && Array.length t.replicas > 0 then begin
    let ep = t.replicas.(t.rr mod Array.length t.replicas) in
    t.rr <- t.rr + 1;
    match on_replica t ep ~params ~options text with
    | Some result ->
      Registry.incr m_reads_replica;
      result
    | None ->
      Registry.incr m_reads_primary;
      on_primary t ~params ~options text
  end
  else begin
    if is_read t text then Registry.incr m_reads_primary;
    let result = on_primary t ~params ~options text in
    track_tx t text result;
    result
  end
