(** The replica side of WAL shipping.

    A replica tails a primary over the wire protocol's replication
    verbs and applies the stream into its own {!Cypher_storage.Store}:

    - {e bootstrap}: fetch the primary's committed snapshot ('B',
      chunked), persist the bytes verbatim, and continue from its
      watermark — the replica's sequence numbers are the primary's;
    - {e tailing}: long-poll ('F') for framed WAL records and apply
      each batch through {!Cypher_storage.Store.apply_replicated} (the
      recovery replay path) as one local group commit;
    - {e integrity}: every frame is CRC-checked and the batch must be
      gap-free from [last applied + 1]; any violation triggers a full
      resync instead of a partial apply;
    - {e resilience}: a dropped primary connection is retried with
      exponential backoff and jitter; a fetch below the primary's
      retention floor (replica fell too far behind, or the primary
      restarted) resyncs from a fresh snapshot.

    Progress is exposed on the process registry: [cypher_repl_lag_records]
    (gauge), records/batches applied, resyncs, integrity failures,
    reconnects, and a batch apply-latency histogram. *)

module Store = Cypher_storage.Store
module Wal = Cypher_storage.Wal
module Client = Cypher_server.Client

type config = {
  fetch_max_records : int;  (** records per long-poll answer *)
  fetch_wait_ms : int;  (** primary-side long-poll budget *)
  connect_timeout : float;
  io_timeout : float;  (** socket timeout; must exceed [fetch_wait_ms] *)
  boot_timeout : float;
      (** socket timeout while a snapshot transfer is in flight — the
          primary encodes the whole committed image before the first
          chunk, so this must scale with store size, not fetch size *)
  retry : Client.retry;  (** reconnect backoff policy *)
}

val default_config : config

type t

val start :
  ?config:config -> host:string -> port:int -> Store.t -> (t, string) result
(** [start ~host ~port store] bootstraps [store] from the primary at
    [host:port] and spawns the applier thread.  An empty store (no
    applied history) always takes a full snapshot transfer — it cannot
    prove it shares the primary's lineage, even if the sequence numbers
    happen to align.  A store with history takes a snapshot only when
    the primary no longer serves its position (WAL retention, primary
    restart); otherwise it catches up from the stream.  Fails if the
    primary is unreachable after the configured retries or the
    bootstrap is rejected. *)

val stop : t -> unit
(** Stops the applier thread and closes the primary connection.  The
    store is left open — it is the server's to close. *)

val last_applied : t -> int
(** The highest primary sequence number applied locally (the store's
    [last_seq] — the two are the same number by construction). *)

val last_error : t -> string option
(** The most recent transport/apply error, [None] while healthy. *)

val wait_for_seq : t -> seq:int -> timeout:float -> bool
(** Blocks (bounded) until at least [seq] is applied; [true] iff it
    got there in time. *)

val pause : t -> unit
(** Freezes the applier (tests create controlled lag with this). *)

val resume : t -> unit

val validate_batch :
  expect_seq:int -> string list -> (Wal.record list, string) result
(** Decodes a fetched batch of framed records, enforcing per-frame CRC
    and exact sequence contiguity from [expect_seq].  Exposed for
    direct unit testing of the integrity checks. *)
