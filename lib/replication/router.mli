(** A replica-aware client: writes (and whole transactions) go to the
    primary, reads round-robin across replicas, and read-your-writes
    session consistency is preserved via the commit watermark.

    Every write answer carries the primary's commit sequence number;
    the router keeps the highest seen (the session {e high-water
    mark}) and stamps it on replica reads as the ["min_seq"] request
    option.  A replica that cannot reach that mark within its wait
    budget answers [Stale_replica], and the router transparently
    retries the read on the primary — so this client never observes a
    state older than its own writes.

    A replica that fails at the transport level is dropped and redialed
    lazily on a later pick; reads (idempotent) fall through to the
    primary meanwhile.  A {e write} whose answer was lost is {e never}
    auto-retried: the commit may have landed, and re-running it is not
    idempotent — the transport error is reported instead.

    Not thread-safe: create one router per worker thread. *)

module Client = Cypher_server.Client

type config = {
  connect_timeout : float;
  io_timeout : float;
  retry : Client.retry;  (** backoff for the initial primary dial *)
  min_seq_wait_ms : int;  (** replica-side freshness wait budget *)
}

val default_config : config

type t

val create :
  ?config:config ->
  primary:string * int ->
  replicas:(string * int) list ->
  unit ->
  (t, string) result
(** Connects to the primary (with retry/backoff); replicas are dialed
    lazily.  With an empty replica list every request goes to the
    primary — a router against a standalone server is just a client. *)

val query :
  ?params:(string * Cypher_values.Value.t) list ->
  ?options:(string * Cypher_values.Value.t) list ->
  t ->
  string ->
  (Client.result_set, Client.error) result
(** Classifies the statement from its AST ({!Cypher_engine.Engine.classify})
    and routes it: [Update], transaction keywords and anything inside
    an open transaction go to the primary; [Read_only] statements go to
    the next replica, falling back to the primary on staleness or
    replica failure. *)

val high_water : t -> int
(** The session high-water mark: the highest commit seq this router
    has observed from its own writes (0 before the first write). *)

val close : t -> unit
